#include "protocols/directory.h"

namespace eecc {

namespace {

// Expands a precise sharer set to the set the directory's sharing code can
// actually express. Coarse vectors invalidate whole groups (spurious
// invalidations to non-holders, which simply ack); limited pointers track
// up to N sharers precisely and fall back to broadcast-to-all on overflow.
NodeSet expandSharingCode(const NodeSet& sharers, SharingCode code,
                          std::int32_t tiles) {
  std::int32_t group = 1;
  std::int32_t ptrLimit = 0;
  switch (code) {
    case SharingCode::FullMap:
      return sharers;
    case SharingCode::CoarseVector2:
      group = 2;
      break;
    case SharingCode::CoarseVector4:
      group = 4;
      break;
    case SharingCode::LimitedPtr2:
      ptrLimit = 2;
      break;
    case SharingCode::LimitedPtr4:
      ptrLimit = 4;
      break;
  }
  if (ptrLimit > 0) {
    if (sharers.size() <= ptrLimit) return sharers;
    NodeSet all;
    for (NodeId t = 0; t < tiles; ++t) all.insert(t);
    return all;
  }
  NodeSet expanded;
  sharers.forEach([&](NodeId s) {
    const NodeId base = (s / group) * group;
    for (NodeId t = base; t < base + group && t < tiles; ++t)
      expanded.insert(t);
  });
  return expanded;
}

enum DirMsg : std::uint16_t {
  kReadReq = Protocol::kFirstProtocolMsg,  // requestor -> home (or bounce)
  kWriteReq,                               // requestor -> home (or bounce)
  kFwdRead,                                // home -> owner L1
  kFwdWrite,                               // home -> owner L1
  kData,                                   // supplier -> requestor
  kAckCount,    // home -> requestor: #invalidation acks (upgrade path)
  kInval,       // home -> sharer
  kInvalAck,    // sharer -> requestor
  kWbOwner,     // dirty owner -> home after a forwarded read
  kWbL1Data,    // L1 M-eviction writeback -> home
  kWbL1Clean,   // L1 E-eviction notice -> home
  kDirInval,    // home -> holder (directory-entry eviction)
  kDirInvalAck,     // holder -> home
  kDirInvalAckData  // dirty holder -> home (carries the block)
};

// The MESI stable-state automaton as table data (DESIGN.md §15). State ids
// mirror DirectoryProtocol::L1State declaration order.
constexpr std::uint8_t kS = 0, kE = 1, kM = 2;
constexpr tbl::Transition kDirectoryTable[] = {
    // Core reads hit on any valid copy.
    {kS, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kE, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kM, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    // Core writes need a writable copy: E upgrades silently, S starts an
    // upgrade transaction at the home.
    {kS, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    {kM, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    // Replacement: S evicts silently (the home's sharer vector becomes a
    // stale superset), E sends a clean notice, M writes the data back.
    {kS, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::WritebackClean, tbl::Action::Invalidate}},
    {kM, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::WritebackData, tbl::Action::Invalidate}},
    // Home-directed invalidation (remote write or directory-entry
    // eviction); the unconditional ack is the dispatch site's.
    {kS, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kM, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    // Forwarded requests at the owner. S means the forward went stale (the
    // owner's writeback overtook it): Miss bounces through the home. A
    // read downgrades the owner to S and writes the block through to the
    // home; a write hands the data over and invalidates the old owner.
    {kS, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled, kS,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::WritebackData}},
    {kM, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled, kS,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::WritebackData}},
    {kS, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Invalidate}},
    {kM, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Invalidate}},
};
}  // namespace

tbl::ProtocolTable DirectoryProtocol::makeStableTable() {
  return tbl::ProtocolTable("dir", kDirectoryTable, /*numStates=*/3,
                            /*sharedState=*/kS, /*modifiedState=*/kM);
}

DirectoryProtocol::DirectoryProtocol(EventQueue& events, Network& net,
                                     const CmpConfig& cfg)
    : Protocol(events, net, cfg), table_(makeStableTable()) {
  tiles_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  banks_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_.emplace_back(cfg_);
    banks_.emplace_back(cfg_);
  }
}

// ---------------------------------------------------------------- L1 side

bool DirectoryProtocol::tryHit(NodeId tile, Addr block, AccessType type) {
  auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
  energy_.l1TagProbe += 1;
  L1Line* line = l1.find(block);
  if (line == nullptr) return false;
  struct Ops {
    DirectoryProtocol& p;
    CacheArray<L1Line>& l1;
    L1Line& line;
    NodeId tile;
    Addr block;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t s) { line.state = static_cast<L1State>(s); }
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
        case tbl::Action::ChargeL1Write: p.energy_.l1DataWrite += 1; break;
        case tbl::Action::Touch: l1.touch(line); break;
        case tbl::Action::RecordRead: p.recordRead(tile, line.value); break;
        case tbl::Action::CommitWrite:
          line.value = p.commitWrite(block);
          break;
        default: EECC_CHECK_MSG(false, "action not in the hit vocabulary");
      }
    }
  } ops{*this, l1, *line, tile, block};
  return table_.run(static_cast<std::uint8_t>(line->state),
                    type == AccessType::Read ? tbl::Event::LocalRead
                                             : tbl::Event::LocalWrite,
                    ops) == tbl::Outcome::Hit;
}

void DirectoryProtocol::installL1(NodeId tile, Addr block, L1State state,
                                  std::uint64_t value) {
  auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
  if (L1Line* existing = l1.find(block)) {
    existing->state = state;
    existing->value = value;
    l1.touch(*existing);
    energy_.l1DataWrite += 1;
    return;
  }
  L1Line* victim = l1.selectVictim(
      block, [this](const L1Line& l) { return lineBusy(l.addr); });
  if (victim == nullptr) {
    // Every way busy with in-flight transactions (pathological); fall back
    // to plain LRU — handlers tolerate lines vanishing under them.
    victim = l1.selectVictim(block, nullptr);
  }
  EECC_CHECK(victim != nullptr);
  if (victim->valid) evictL1Line(tile, *victim);
  L1Line& line = l1.install(*victim, block);
  line.state = state;
  line.value = value;
  energy_.l1DataWrite += 1;
  energy_.l1TagProbe += 1;
}

void DirectoryProtocol::evictL1Line(NodeId tile, L1Line& line) {
  struct Ops {
    DirectoryProtocol& p;
    NodeId tile;
    L1Line& line;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t) {}
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::Invalidate:
          p.tiles_[static_cast<std::size_t>(tile)].l1.invalidate(line);
          break;
        case tbl::Action::WritebackClean:
        case tbl::Action::WritebackData: {
          const bool dirty = a == tbl::Action::WritebackData;
          Message wb;
          wb.type = dirty ? kWbL1Data : kWbL1Clean;
          wb.cls = dirty ? MsgClass::Data : MsgClass::Control;
          wb.src = tile;
          wb.dst = p.homeOf(line.addr);
          wb.addr = line.addr;
          wb.value = line.value;
          if (dirty) p.stats_.writebacks += 1;
          p.energy_.l1DataRead += 1;
          p.send(wb);
          break;
        }
        default:
          EECC_CHECK_MSG(false, "action not in the replace vocabulary");
      }
    }
  } ops{*this, tile, line};
  table_.run(static_cast<std::uint8_t>(line.state), tbl::Event::Replace, ops);
}

void DirectoryProtocol::serveFwdSupply(NodeId tile, L1Line& line,
                                       const Message& msg) {
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  it->second.links +=
      static_cast<std::uint32_t>(distance(tile, msg.requestor));
  Message data;
  data.type = kData;
  data.cls = MsgClass::Data;
  data.src = tile;
  data.dst = msg.requestor;
  data.origin = msg.requestor;
  data.addr = msg.addr;
  data.value = line.value;
  after(cfg_.l1.tagLatency + cfg_.l1.dataLatency, [this, data] {
    stageMark(data.addr, Stage::Service);  // owner occupancy
    send(data);
  });
}

void DirectoryProtocol::fwdWriteThrough(NodeId tile, L1Line& line,
                                        const Message& msg, bool wasDirty) {
  // The downgraded owner writes the block through to the home so the
  // shared L2 can serve subsequent readers (dirty data makes this
  // mandatory; clean data keeps the "optimized directory" baseline from
  // bouncing every shared read off-chip).
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  it->second.wbPending = true;
  if (wasDirty) stats_.writebacks += 1;
  Message wb;
  wb.type = kWbOwner;
  wb.cls = MsgClass::Data;
  wb.src = tile;
  wb.dst = homeOf(msg.addr);
  wb.origin = msg.requestor;  // write-through is part of the read txn
  wb.addr = msg.addr;
  wb.value = line.value;
  wb.aux = wasDirty ? 1 : 0;
  after(cfg_.l1.tagLatency + cfg_.l1.dataLatency, [this, wb] {
    stageMark(wb.addr, Stage::Service);  // owner occupancy
    send(wb);
  });
}

// --------------------------------------------------------------- Home side

DirectoryProtocol::DirInfo* DirectoryProtocol::findDir(Bank& bank,
                                                       Addr block) {
  if (L2Line* line = bank.l2.find(block)) return &line->dir;
  if (DirEntry* e = bank.dirCache.find(block)) return &e->dir;
  if (auto it = dirOverflow_.find(block); it != dirOverflow_.end())
    return &it->second;
  return nullptr;
}
const DirectoryProtocol::DirInfo* DirectoryProtocol::findDir(
    const Bank& bank, Addr block) const {
  return const_cast<DirectoryProtocol*>(this)->findDir(
      const_cast<Bank&>(bank), block);
}

DirectoryProtocol::DirInfo& DirectoryProtocol::ensureDir(NodeId home,
                                                         Addr block) {
  Bank& bank = bankOf(home);
  if (DirInfo* d = findDir(bank, block)) return *d;
  DirEntry* victim = bank.dirCache.selectVictim(
      block, [this](const DirEntry& e) { return lineBusy(e.addr); });
  energy_.dirCacheUpdate += 1;
  if (victim == nullptr) {
    // Every way holds a record with an in-flight transaction: park the new
    // record in the overflow area instead of stranding either one.
    return dirOverflow_[block];
  }
  if (victim->valid) evictDirEntry(home, *victim);
  DirEntry& entry = bank.dirCache.install(*victim, block);
  return entry.dir;
}

void DirectoryProtocol::dropDirIfEmpty(Bank& bank, Addr block) {
  if (DirEntry* e = bank.dirCache.find(block)) {
    if (e->dir.empty()) bank.dirCache.invalidate(*e);
  }
  if (auto it = dirOverflow_.find(block); it != dirOverflow_.end()) {
    if (it->second.empty()) dirOverflow_.erase(it);
  }
}

void DirectoryProtocol::storeAtL2(NodeId home, Addr block,
                                  std::uint64_t value, bool dirty) {
  Bank& bank = bankOf(home);
  energy_.l2DataWrite += 1;
  if (L2Line* line = bank.l2.find(block)) {
    line->value = value;
    line->dirty = line->dirty || dirty;
    bank.l2.touch(*line);
    return;
  }
  L2Line* victim = bank.l2.selectVictim(
      block, [this](const L2Line& l) { return lineBusy(l.addr); });
  if (victim == nullptr) victim = bank.l2.selectVictim(block, nullptr);
  EECC_CHECK(victim != nullptr);
  if (victim->valid) evictL2Line(home, *victim);
  L2Line& line = bank.l2.install(*victim, block);
  line.value = value;
  line.dirty = dirty;
  // Directory info migrates from the dir cache into the L2 entry (NCID).
  if (DirEntry* e = bank.dirCache.find(block)) {
    line.dir = e->dir;
    bank.dirCache.invalidate(*e);
    energy_.dirCacheUpdate += 1;
    energy_.l2DirUpdate += 1;
  } else if (auto it = dirOverflow_.find(block); it != dirOverflow_.end()) {
    line.dir = it->second;
    dirOverflow_.erase(it);
    energy_.l2DirUpdate += 1;
  }
}

void DirectoryProtocol::evictL2Line(NodeId home, L2Line& line) {
  stats_.l2Evictions += 1;
  Bank& bank = bankOf(home);
  if (!line.dir.empty()) {
    // NCID: keep the directory info alive in the extra tags so the L1
    // copies survive the data eviction.
    DirEntry* victim = bank.dirCache.selectVictim(
        line.addr, [this](const DirEntry& e) { return lineBusy(e.addr); });
    energy_.dirCacheUpdate += 1;
    if (victim == nullptr) {
      dirOverflow_[line.addr] = line.dir;
    } else {
      if (victim->valid) evictDirEntry(home, *victim);
      DirEntry& entry = bank.dirCache.install(*victim, line.addr);
      entry.dir = line.dir;
    }
  }
  if (line.dirty && line.dir.owner == kInvalidNode) {
    energy_.l2DataRead += 1;
    memWriteback(line.addr, home, line.value);
  }
  bankOf(home).l2.invalidate(line);
}

void DirectoryProtocol::startDirEvictionInvalidation(NodeId home, Addr block,
                                                     DirInfo snapshot) {
  withLine(block, [this, home, block, snapshot] {
    // Holders that evicted their copy in the meantime simply ack.
    NodeSet targets = expandSharingCode(snapshot.sharers,
                                        cfg_.dirSharingCode, cfg_.tiles());
    if (snapshot.owner != kInvalidNode) targets.insert(snapshot.owner);

    Txn& txn = txns_[block];
    txn = Txn{};
    txn.background = true;
    txn.requestor = home;
    txn.bgAcks = targets.size();
    stats_.dirEvictionInvalidations += 1;
    if (txn.bgAcks == 0) {
      txns_.erase(block);
      releaseLine(block);
      return;
    }
    targets.forEach([this, home, block](NodeId t) {
      Message inv;
      inv.type = kDirInval;
      inv.src = home;
      inv.dst = t;
      inv.addr = block;
      inv.requestor = home;
      stats_.invalidationsSent += 1;
      send(inv);
    });
  });
}

void DirectoryProtocol::evictDirEntry(NodeId home, DirEntry& entry) {
  const Addr block = entry.addr;
  const DirInfo snapshot = entry.dir;
  bankOf(home).dirCache.invalidate(entry);
  energy_.dirCacheUpdate += 1;
  // "Only when a directory entry is evicted, the block is also evicted
  // (if present), and every copy of the block is invalidated."
  Bank& bank = bankOf(home);
  if (L2Line* line = bank.l2.find(block)) {
    if (line->dirty && snapshot.owner == kInvalidNode) {
      energy_.l2DataRead += 1;
      memWriteback(block, home, line->value);
    }
    bank.l2.invalidate(*line);
  }
  startDirEvictionInvalidation(home, block, snapshot);
}

// ------------------------------------------------------------ Transactions

void DirectoryProtocol::startMiss(NodeId tile, Addr block, AccessType type,
                                  DoneFn done) {
  Txn& txn = txns_[block];
  txn = Txn{};
  txn.requestor = tile;
  txn.type = type;
  txn.done = std::move(done);
  txn.start = events_.now();

  if (type == AccessType::Write) {
    const L1Line* line =
        tiles_[static_cast<std::size_t>(tile)].l1.find(block);
    if (line != nullptr) {
      txn.needsData = false;  // upgrade from S
      stats_.upgrades += 1;
    }
  }

  Message req;
  req.type = type == AccessType::Read ? kReadReq : kWriteReq;
  req.src = tile;
  req.dst = homeOf(block);
  req.addr = block;
  req.requestor = tile;
  txn.links += static_cast<std::uint32_t>(distance(tile, req.dst));
  send(req);
}

void DirectoryProtocol::maybeCompleteAccess(Addr block) {
  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  EECC_CHECK(!txn.background);

  const bool dataReady =
      txn.dataArrived || (!txn.needsData && txn.grantArrived);
  if (txn.type == AccessType::Read) {
    if (dataReady && !txn.coreNotified) {
      txn.coreNotified = true;
      installL1(txn.requestor, block,
                txn.exclusiveGrant ? L1State::E : L1State::S, txn.value);
      recordRead(txn.requestor, txn.value);
      recordMiss(block, txn.cls, txn.start, txn.links);
      txn.done();
    }
    if (txn.coreNotified && !txn.wbPending) {
      txns_.erase(it);
      releaseLine(block);
    }
    return;
  }
  // Write: needs the data (unless upgrading) and every invalidation ack.
  if (dataReady && txn.ackCountKnown && txn.acksOutstanding == 0 &&
      !txn.coreNotified) {
    txn.coreNotified = true;
    installL1(txn.requestor, block, L1State::M, commitWrite(block));
    recordMiss(block, txn.cls, txn.start, txn.links);
    txn.done();
    txns_.erase(it);
    releaseLine(block);
  }
}

void DirectoryProtocol::homeHandleRead(const Message& msg) {
  const NodeId home = msg.dst;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;
  stageMark(block, Stage::Request);  // request reached its serializer
  Bank& bank = bankOf(home);
  energy_.l2TagProbe += 1;
  energy_.dirCacheProbe += 1;

  auto it = txns_.find(block);
  EECC_CHECK_MSG(it != txns_.end(), "read request without transaction");
  Txn& txn = it->second;

  DirInfo* dir = findDir(bank, block);
  L2Line* line = bank.l2.find(block);
  if (dir != nullptr) energy_.l2DirRead += 1;

  if (dir != nullptr && dir->owner != kInvalidNode &&
      dir->owner != requestor) {
    // 3-hop path: forward to the owning L1; the directory optimistically
    // moves to the shared state (the owner downgrades on receipt).
    const NodeId owner = dir->owner;
    dir->owner = kInvalidNode;
    dir->sharers.insert(owner);
    dir->sharers.insert(requestor);
    energy_.l2DirUpdate += 1;
    txn.cls = MissClass::UnpredOwner;
    txn.links += static_cast<std::uint32_t>(distance(home, owner));
    Message fwd = msg;
    fwd.type = kFwdRead;
    fwd.src = home;
    fwd.dst = owner;
    after(cfg_.l2.tagLatency, [this, fwd] {
      stageMark(fwd.addr, Stage::Service);
      send(fwd);
    });
    return;
  }
  if (line != nullptr) {
    // 2-hop path: data straight from the home bank.
    energy_.l2DataRead += 1;
    stats_.l2DataHits += 1;
    DirInfo& d = ensureDir(home, block);
    d.sharers.insert(requestor);
    energy_.l2DirUpdate += 1;
    txn.cls = MissClass::UnpredL2;
    txn.links += static_cast<std::uint32_t>(distance(home, requestor));
    Message data;
    data.type = kData;
    data.cls = MsgClass::Data;
    data.src = home;
    data.dst = requestor;
    data.origin = requestor;
    data.addr = block;
    data.value = line->value;
    after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, data] {
      stageMark(data.addr, Stage::Service);
      send(data);
    });
    return;
  }
  // Off-chip (possibly with clean sharers whose data left the L2: memory
  // is still current, NCID keeps their directory info alive). NCID is an
  // inclusive *directory*: the fill allocates a home L2 entry (tag + dir
  // + the clean memory data), so only data evictions ever fall back to
  // the extra-tag dir cache.
  DirInfo* existing = findDir(bank, block);
  const bool exclusive = existing == nullptr || existing->empty();
  storeAtL2(home, block, memoryValue(block), /*dirty=*/false);
  DirInfo& d = *findDir(bank, block);
  if (exclusive) d.owner = requestor;
  else d.sharers.insert(requestor);
  energy_.l2DirUpdate += 1;
  txn.cls = MissClass::Memory;
  txn.exclusiveGrant = exclusive;
  txn.links += static_cast<std::uint32_t>(
      distance(home, cfg_.memControllerOf(block)) +
      distance(cfg_.memControllerOf(block), requestor));
  memFetch(block, home, requestor, [this, block](std::uint64_t value) {
    auto t = txns_.find(block);
    EECC_CHECK(t != txns_.end());
    t->second.dataArrived = true;
    t->second.grantArrived = true;
    t->second.value = value;
    maybeCompleteAccess(block);
  });
}

void DirectoryProtocol::homeHandleWrite(const Message& msg) {
  const NodeId home = msg.dst;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;
  stageMark(block, Stage::Request);  // request reached its serializer
  Bank& bank = bankOf(home);
  energy_.l2TagProbe += 1;
  energy_.dirCacheProbe += 1;

  auto it = txns_.find(block);
  EECC_CHECK_MSG(it != txns_.end(), "write request without transaction");
  Txn& txn = it->second;

  DirInfo* dir = findDir(bank, block);
  L2Line* line = bank.l2.find(block);
  if (dir != nullptr) energy_.l2DirRead += 1;

  if (dir != nullptr && dir->owner != kInvalidNode &&
      dir->owner != requestor) {
    // Exclusive elsewhere: forward; the old owner supplies data + invalidates.
    const NodeId owner = dir->owner;
    dir->owner = requestor;
    dir->sharers.clear();
    energy_.l2DirUpdate += 1;
    txn.cls = MissClass::UnpredOwner;
    txn.ackCountKnown = true;
    txn.links += static_cast<std::uint32_t>(distance(home, owner));
    Message fwd = msg;
    fwd.type = kFwdWrite;
    fwd.src = home;
    fwd.dst = owner;
    after(cfg_.l2.tagLatency, [this, fwd] {
      stageMark(fwd.addr, Stage::Service);
      send(fwd);
    });
    return;
  }

  // Gather invalidation targets among current sharers, widened to what
  // the configured sharing code can express (spurious targets ack too).
  NodeSet targets;
  if (dir != nullptr) {
    targets = expandSharingCode(dir->sharers, cfg_.dirSharingCode,
                                cfg_.tiles());
    targets.erase(requestor);
  }
  txn.acksOutstanding += targets.size();
  txn.ackCountKnown = true;
  targets.forEach([this, home, block, requestor](NodeId s) {
    Message inv;
    inv.type = kInval;
    inv.src = home;
    inv.dst = s;
    inv.addr = block;
    inv.requestor = requestor;
    stats_.invalidationsSent += 1;
    after(cfg_.l2.tagLatency, [this, inv] {
      stageMark(inv.addr, Stage::Service);
      send(inv);
    });
  });

  DirInfo* dw = dir;
  if (dw == nullptr) {
    // Fill path handled below allocates the entry; for sharer
    // invalidation paths the record must already exist.
    dw = &ensureDir(home, block);
  }
  dw->owner = requestor;
  dw->sharers.clear();
  energy_.l2DirUpdate += 1;

  if (!txn.needsData) {
    // Upgrade: only the ack count travels back.
    txn.cls = MissClass::UnpredL2;
    txn.links += static_cast<std::uint32_t>(distance(home, requestor));
    Message cnt;
    cnt.type = kAckCount;
    cnt.src = home;
    cnt.dst = requestor;
    cnt.origin = requestor;
    cnt.addr = block;
    after(cfg_.l2.tagLatency, [this, cnt] {
      stageMark(cnt.addr, Stage::Service);
      send(cnt);
    });
    return;
  }
  if (line != nullptr) {
    energy_.l2DataRead += 1;
    stats_.l2DataHits += 1;
    txn.cls = MissClass::UnpredL2;
    txn.links += static_cast<std::uint32_t>(distance(home, requestor));
    Message data;
    data.type = kData;
    data.cls = MsgClass::Data;
    data.src = home;
    data.dst = requestor;
    data.origin = requestor;
    data.addr = block;
    data.value = line->value;
    after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, data] {
      stageMark(data.addr, Stage::Service);
      send(data);
    });
    return;
  }
  txn.cls = MissClass::Memory;
  // Inclusive directory (NCID): allocate the home entry for the fill.
  storeAtL2(home, block, memoryValue(block), /*dirty=*/false);
  DirInfo& df = *findDir(bank, block);
  df.owner = requestor;
  df.sharers.clear();
  energy_.l2DirUpdate += 1;
  txn.links += static_cast<std::uint32_t>(
      distance(home, cfg_.memControllerOf(block)) +
      distance(cfg_.memControllerOf(block), requestor));
  memFetch(block, home, requestor, [this, block](std::uint64_t value) {
    auto t = txns_.find(block);
    EECC_CHECK(t != txns_.end());
    t->second.dataArrived = true;
    t->second.grantArrived = true;
    t->second.value = value;
    maybeCompleteAccess(block);
  });
}

void DirectoryProtocol::onMessage(const Message& msg) {
  switch (msg.type) {
    case kReadReq:
      homeHandleRead(msg);
      return;
    case kWriteReq:
      homeHandleWrite(msg);
      return;

    case kFwdRead:
    case kFwdWrite: {
      stageMark(msg.addr, Stage::Request);  // 3-hop request leg
      const NodeId tile = msg.dst;
      auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
      energy_.l1TagProbe += 1;
      L1Line* line = l1.find(msg.addr);
      const tbl::Event ev =
          msg.type == kFwdRead ? tbl::Event::SnoopRead : tbl::Event::SnoopWrite;
      struct Ops {
        DirectoryProtocol& p;
        CacheArray<L1Line>& l1;
        L1Line* line;
        NodeId tile;
        const Message& msg;
        bool wasDirty;  // captured before the row's next-state applies
        tbl::Event ev;
        bool guard(tbl::Guard) const { return true; }
        void setState(std::uint8_t s) {
          line->state = static_cast<L1State>(s);
        }
        void act(tbl::Action a) {
          switch (a) {
            case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
            case tbl::Action::SupplyData:
              p.serveFwdSupply(tile, *line, msg);
              break;
            case tbl::Action::WritebackData:
              p.fwdWriteThrough(tile, *line, msg, wasDirty);
              break;
            case tbl::Action::Invalidate: l1.invalidate(*line); break;
            default:
              EECC_CHECK_MSG(false, "action not in the forward vocabulary");
          }
        }
      } ops{*this,
            l1,
            line,
            tile,
            msg,
            line != nullptr && line->state == L1State::M,
            ev};
      const tbl::Outcome out =
          line == nullptr
              ? tbl::Outcome::Miss
              : table_.run(static_cast<std::uint8_t>(line->state), ev, ops);
      if (out == tbl::Outcome::Miss) {
        // Stale forward (the owner evicted; its writeback is ahead of this
        // bounce on the same route): retry through the home.
        Message bounce = msg;
        bounce.type = msg.type == kFwdRead ? kReadReq : kWriteReq;
        bounce.src = tile;
        bounce.dst = homeOf(msg.addr);
        auto it = txns_.find(msg.addr);
        if (it != txns_.end())
          it->second.links += static_cast<std::uint32_t>(
              distance(tile, bounce.dst));
        send(bounce);
      }
      return;
    }

    case kData: {
      stageMark(msg.addr, Stage::DataReturn);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.dataArrived = true;
      it->second.grantArrived = true;
      it->second.value = msg.value;
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kAckCount: {
      stageMark(msg.addr, Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.grantArrived = true;
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kInval: {
      stageMark(msg.addr, Stage::Fanout);  // invalidation wave arrival
      const NodeId tile = msg.dst;
      auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
      energy_.l1TagProbe += 1;
      if (L1Line* line = l1.find(msg.addr)) {
        struct Ops {
          CacheArray<L1Line>& l1;
          L1Line& line;
          bool guard(tbl::Guard) const { return true; }
          void setState(std::uint8_t s) {
            line.state = static_cast<L1State>(s);
          }
          void act(tbl::Action a) {
            EECC_CHECK_MSG(a == tbl::Action::Invalidate,
                           "action not in the inval vocabulary");
            l1.invalidate(line);
          }
        } ops{l1, *line};
        table_.run(static_cast<std::uint8_t>(line->state), tbl::Event::Inval,
                   ops);
      }
      Message ack;
      ack.type = kInvalAck;
      ack.src = tile;
      ack.dst = msg.requestor;
      ack.origin = msg.requestor;  // the write that forced the invalidation
      ack.addr = msg.addr;
      after(cfg_.l1.tagLatency, [this, ack] { send(ack); });
      return;
    }

    case kInvalAck: {
      stageMark(msg.addr, Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.acksOutstanding -= 1;
      EECC_CHECK(it->second.acksOutstanding >= 0);
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kWbOwner: {
      storeAtL2(msg.dst, msg.addr, msg.value, /*dirty=*/msg.aux != 0);
      auto it = txns_.find(msg.addr);
      if (it != txns_.end() && !it->second.background) {
        it->second.wbPending = false;
        maybeCompleteAccess(msg.addr);
      }
      return;
    }

    case kWbL1Data:
    case kWbL1Clean: {
      const NodeId home = msg.dst;
      Bank& bank = bankOf(home);
      energy_.l2TagProbe += 1;
      energy_.dirCacheProbe += 1;
      if (msg.type == kWbL1Data)
        storeAtL2(home, msg.addr, msg.value, /*dirty=*/true);
      if (DirInfo* dir = findDir(bank, msg.addr)) {
        if (dir->owner == msg.src) dir->owner = kInvalidNode;
        else dir->sharers.erase(msg.src);
        energy_.l2DirUpdate += 1;
        dropDirIfEmpty(bank, msg.addr);
      }
      return;
    }

    case kDirInval: {
      const NodeId tile = msg.dst;
      auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
      energy_.l1TagProbe += 1;
      Message ack;
      ack.type = kDirInvalAck;
      ack.src = tile;
      ack.dst = msg.requestor;
      ack.origin = msg.origin;  // background maintenance: keep the home's tag
      ack.addr = msg.addr;
      if (L1Line* line = l1.find(msg.addr)) {
        if (line->state == L1State::M) {
          ack.type = kDirInvalAckData;
          ack.cls = MsgClass::Data;
          ack.value = line->value;
          energy_.l1DataRead += 1;
        }
        l1.invalidate(*line);
      }
      after(cfg_.l1.tagLatency, [this, ack] { send(ack); });
      return;
    }

    case kDirInvalAck:
    case kDirInvalAckData: {
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end() && it->second.background);
      if (msg.type == kDirInvalAckData)
        memWriteback(msg.addr, msg.dst, msg.value);
      it->second.bgAcks -= 1;
      if (it->second.bgAcks == 0) {
        const Addr block = msg.addr;
        txns_.erase(it);
        releaseLine(block);
      }
      return;
    }

    default:
      EECC_CHECK_MSG(false, "unknown directory message");
  }
}

// ------------------------------------------------------------ Introspection

DirectoryProtocol::LineView DirectoryProtocol::l1Line(NodeId tile,
                                                      Addr block) const {
  const auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
  LineView v;
  if (const L1Line* line = l1.find(block)) {
    v.valid = true;
    v.value = line->value;
    v.state = line->state == L1State::M   ? 'M'
              : line->state == L1State::E ? 'E'
                                          : 'S';
  }
  return v;
}

void DirectoryProtocol::forEachL1Copy(
    const std::function<void(const L1CopyView&)>& fn) const {
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          L1CopyView v;
          v.tile = t;
          v.block = line.addr;
          v.state = line.state == L1State::M   ? 'M'
                    : line.state == L1State::E ? 'E'
                                               : 'S';
          v.value = line.value;
          v.busy = lineBusy(line.addr);
          fn(v);
        });
  }
}

void DirectoryProtocol::forEachL2Block(
    const std::function<void(NodeId tile, Addr block)>& fn) const {
  for (NodeId h = 0; h < cfg_.tiles(); ++h)
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) { fn(h, line.addr); });
}

void DirectoryProtocol::auditInvariants(const AuditFailFn& fail) const {
  // Assumes quiesced blocks (in-flight ones are skipped). Per block: at
  // most one E/M copy; E/M excludes other copies; all copies hold the
  // committed value; every copy is covered by home directory info; the L2
  // value matches the committed value unless an L1 owner exists.
  std::unordered_map<Addr, NodeId> exclusiveHolder;
  std::unordered_map<Addr, std::vector<NodeId>> holders;
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          if (lineBusy(line.addr)) return;
          holders[line.addr].push_back(t);
          if (line.state != L1State::S) {
            if (exclusiveHolder.contains(line.addr))
              fail("two exclusive copies (SWMR violated): tiles " +
                   std::to_string(exclusiveHolder[line.addr]) + " and " +
                   std::to_string(t) + ", " + describeBlock(line.addr));
            exclusiveHolder[line.addr] = t;
          }
          if (line.value != committedValue(line.addr))
            fail("L1 copy holds a stale value: tile " + std::to_string(t) +
                 ", " + describeBlock(line.addr));
        });
  }
  for (const auto& [block, list] : holders) {
    if (exclusiveHolder.contains(block) && list.size() != 1)
      fail("E/M copy coexists with other copies: " + describeBlock(block));
    const Bank& bank = banks_[static_cast<std::size_t>(cfg_.homeOf(block))];
    const DirInfo* dir = findDir(bank, block);
    if (dir == nullptr) {
      fail("L1 copy with no directory record: " + describeBlock(block));
      continue;
    }
    for (const NodeId t : list)
      if (dir->owner != t && !dir->sharers.contains(t))
        fail("L1 copy not covered by the directory: tile " +
             std::to_string(t) + ", " + describeBlock(block));
    if (auto it = exclusiveHolder.find(block);
        it != exclusiveHolder.end() && dir->owner != it->second)
      fail("directory owner pointer is wrong: " + describeBlock(block) +
           ", owner tile " + std::to_string(it->second) +
           ", directory says " + std::to_string(dir->owner));
  }
  for (NodeId h = 0; h < cfg_.tiles(); ++h) {
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) {
          if (lineBusy(line.addr)) return;
          if (line.dir.owner == kInvalidNode &&
              line.value != committedValue(line.addr))
            fail("L2 value stale with no L1 owner: " +
                 describeBlock(line.addr));
        });
  }
}

}  // namespace eecc
