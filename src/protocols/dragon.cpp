#include "protocols/dragon.h"

#include <algorithm>

namespace eecc {

namespace {
enum DragonMsg : std::uint16_t {
  kSnoopReq = Protocol::kFirstProtocolMsg,  // requestor -> every tile
               // (aux bit0 = write; value = the committed update payload)
  kSnoopAck,   // snooped tile -> requestor (aux bit0 = keeps a copy,
               // bit1 = supplies data; Data class iff supplying)
  kHomeReq,    // requestor -> home (no cache supplied; fallback)
  kHomeData,   // home -> requestor
  kWbData      // owned-line eviction writeback -> home
};

// The Dragon stable-state automaton as table data (DESIGN.md §15). State
// ids mirror DragonProtocol::L1State declaration order. The write-update
// wave is expressed with the shared UpdateData action: snooped copies take
// the broadcast value in place and stay valid — no escapes needed.
constexpr std::uint8_t kSc = 0, kE = 1, kSm = 2, kM = 3;
constexpr tbl::Transition kDragonTable[] = {
    // Core reads hit on any valid copy.
    {kSc, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kE, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kSm, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kM, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    // Core writes: exclusive copies (E/M) upgrade silently; shared copies
    // (Sc/Sm) must broadcast the update wave first — that is Dragon's
    // whole point, a write to a shared line is a bus transaction even
    // though the local copy is valid.
    {kSc, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    {kSm, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kM, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    // Replacement: clean copies evict silently; owned (Sm/M) data writes
    // through to the home L2 bank.
    {kSc, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kSm, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::WritebackData, tbl::Action::Invalidate}},
    {kM, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::WritebackData, tbl::Action::Invalidate}},
    // Dragon never invalidates on the coherence path; the rows exist only
    // to keep the automaton total (and serve external flush requests).
    {kSc, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kSm, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kM, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    // Snooped reads: sharers just stay; exclusive and owned copies supply
    // cache-to-cache and become shared — the dirty ones (M -> Sm, Sm
    // stays) keep ownership instead of writing through.
    {kSc, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     kSc, {tbl::Action::ChargeL1Read, tbl::Action::SupplyData}},
    {kSm, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::ChargeL1Read, tbl::Action::SupplyData}},
    {kM, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     kSm, {tbl::Action::ChargeL1Read, tbl::Action::SupplyData}},
    // Snooped writes — the update wave. Every copy takes the broadcast
    // value in place and stays valid as Sc; the writer becomes the owner.
    // Exclusive/owned copies also answer with their (pre-update) data so a
    // copy-less writer gets its fill cache-to-cache.
    {kSc, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::ChargeL1Write, tbl::Action::UpdateData}},
    {kE, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     kSc,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::ChargeL1Write, tbl::Action::UpdateData}},
    {kSm, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     kSc,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::ChargeL1Write, tbl::Action::UpdateData}},
    {kM, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     kSc,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::ChargeL1Write, tbl::Action::UpdateData}},
};
}  // namespace

tbl::ProtocolTable DragonProtocol::makeStableTable() {
  return tbl::ProtocolTable("dragon", kDragonTable, /*numStates=*/4,
                            /*sharedState=*/kSc, /*modifiedState=*/kM);
}

DragonProtocol::DragonProtocol(EventQueue& events, Network& net,
                               const CmpConfig& cfg)
    : Protocol(events, net, cfg), table_(makeStableTable()) {
  tiles_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  banks_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_.emplace_back(cfg_);
    banks_.emplace_back(cfg_);
  }
  maxDist_.resize(static_cast<std::size_t>(cfg_.tiles()), 0);
  for (NodeId t = 0; t < cfg_.tiles(); ++t)
    for (NodeId u = 0; u < cfg_.tiles(); ++u)
      maxDist_[static_cast<std::size_t>(t)] =
          std::max(maxDist_[static_cast<std::size_t>(t)],
                   static_cast<std::uint32_t>(distance(t, u)));
}

// ---------------------------------------------------------------- L1 side

bool DragonProtocol::tryHit(NodeId tile, Addr block, AccessType type) {
  auto& l1 = tileOf(tile).l1;
  energy_.l1TagProbe += 1;
  L1Line* line = l1.find(block);
  if (line == nullptr) return false;
  struct Ops {
    DragonProtocol& p;
    CacheArray<L1Line>& l1;
    L1Line& line;
    NodeId tile;
    Addr block;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t s) { line.state = static_cast<L1State>(s); }
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
        case tbl::Action::ChargeL1Write: p.energy_.l1DataWrite += 1; break;
        case tbl::Action::Touch: l1.touch(line); break;
        case tbl::Action::RecordRead: p.recordRead(tile, line.value); break;
        case tbl::Action::CommitWrite:
          line.value = p.commitWrite(block);
          break;
        default: EECC_CHECK_MSG(false, "action not in the hit vocabulary");
      }
    }
  } ops{*this, l1, *line, tile, block};
  return table_.run(static_cast<std::uint8_t>(line->state),
                    type == AccessType::Read ? tbl::Event::LocalRead
                                             : tbl::Event::LocalWrite,
                    ops) == tbl::Outcome::Hit;
}

void DragonProtocol::installL1(NodeId tile, Addr block, L1State state,
                               std::uint64_t value) {
  auto& l1 = tileOf(tile).l1;
  if (L1Line* existing = l1.find(block)) {
    existing->state = state;
    existing->value = value;
    l1.touch(*existing);
    energy_.l1DataWrite += 1;
    return;
  }
  L1Line* victim = l1.selectVictim(
      block, [this](const L1Line& l) { return lineBusy(l.addr); });
  if (victim == nullptr) victim = l1.selectVictim(block, nullptr);
  EECC_CHECK(victim != nullptr);
  if (victim->valid) evictL1Line(tile, *victim);
  L1Line& line = l1.install(*victim, block);
  line.state = state;
  line.value = value;
  energy_.l1DataWrite += 1;
  energy_.l1TagProbe += 1;
}

void DragonProtocol::evictL1Line(NodeId tile, L1Line& line) {
  struct Ops {
    DragonProtocol& p;
    NodeId tile;
    L1Line& line;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t) {}
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::WritebackData:
          p.writebackToHome(tile, line);
          break;
        case tbl::Action::Invalidate:
          p.tileOf(tile).l1.invalidate(line);
          break;
        default:
          EECC_CHECK_MSG(false, "action not in the replace vocabulary");
      }
    }
  } ops{*this, tile, line};
  table_.run(static_cast<std::uint8_t>(line.state), tbl::Event::Replace, ops);
}

void DragonProtocol::writebackToHome(NodeId tile, const L1Line& line) {
  stats_.writebacks += 1;
  energy_.l1DataRead += 1;
  PendingWb& pending = pendingWb_[line.addr];
  pending.value = line.value;
  pending.count += 1;
  Message wb;
  wb.type = kWbData;
  wb.cls = MsgClass::Data;
  wb.src = tile;
  wb.dst = homeOf(line.addr);
  wb.addr = line.addr;
  wb.value = line.value;
  send(wb);
}

void DragonProtocol::handleSnoop(const Message& msg) {
  stageMark(msg.addr, Stage::Fanout);  // the snoop wave reached a tile
  const NodeId tile = msg.dst;
  if (tile == msg.requestor) return;  // the broadcast's self-copy
  const bool isWrite = (msg.aux & 1) != 0;
  auto& tl = tileOf(tile);
  energy_.l1TagProbe += 1;
  L1Line* line = tl.l1.find(msg.addr);

  bool supplied = false;
  std::uint64_t value = 0;
  if (line != nullptr) {
    struct Ops {
      DragonProtocol& p;
      Tile& tl;
      NodeId tile;
      L1Line& line;
      const Message& msg;
      bool& supplied;
      std::uint64_t& value;
      bool guard(tbl::Guard) const { return true; }
      void setState(std::uint8_t s) { line.state = static_cast<L1State>(s); }
      void act(tbl::Action a) {
        switch (a) {
          case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
          case tbl::Action::ChargeL1Write: p.energy_.l1DataWrite += 1; break;
          case tbl::Action::SupplyData:
            supplied = true;
            value = line.value;
            break;
          case tbl::Action::UpdateData:
            // The update wave: take the writer's committed value in place.
            line.value = msg.value;
            break;
          case tbl::Action::WritebackData:
            p.writebackToHome(tile, line);
            break;
          case tbl::Action::Invalidate: tl.l1.invalidate(line); break;
          default:
            EECC_CHECK_MSG(false, "action not in the snoop vocabulary");
        }
      }
    } ops{*this, tl, tile, *line, msg, supplied, value};
    table_.run(static_cast<std::uint8_t>(line->state),
               isWrite ? tbl::Event::SnoopWrite : tbl::Event::SnoopRead, ops);
  }
  // Unlike invalidation protocols, a probed copy stays valid on writes
  // too — it was just updated — so the writer lands in Sm, not M.
  const bool keepsShared = line != nullptr;

  Message ack;
  ack.type = kSnoopAck;
  ack.cls = supplied ? MsgClass::Data : MsgClass::Control;
  ack.src = tile;
  ack.dst = msg.requestor;
  ack.origin = msg.requestor;
  ack.addr = msg.addr;
  ack.aux = (keepsShared ? 1u : 0u) | (supplied ? 2u : 0u);
  ack.value = value;
  const Tick delay =
      cfg_.l1.tagLatency + (supplied ? cfg_.l1.dataLatency : 0);
  after(delay, [this, ack] { send(ack); });
}

// --------------------------------------------------------------- Home side

void DragonProtocol::storeAtL2(NodeId home, Addr block, std::uint64_t value,
                               bool dirty) {
  Bank& bank = bankOf(home);
  energy_.l2DataWrite += 1;
  if (L2Line* line = bank.l2.find(block)) {
    line->value = value;
    line->dirty = line->dirty || dirty;
    bank.l2.touch(*line);
    return;
  }
  L2Line* victim = bank.l2.selectVictim(
      block, [this](const L2Line& l) { return lineBusy(l.addr); });
  if (victim == nullptr) victim = bank.l2.selectVictim(block, nullptr);
  EECC_CHECK(victim != nullptr);
  if (victim->valid) evictL2Line(home, *victim);
  L2Line& line = bank.l2.install(*victim, block);
  line.value = value;
  line.dirty = dirty;
}

void DragonProtocol::evictL2Line(NodeId home, L2Line& line) {
  stats_.l2Evictions += 1;
  if (line.dirty) {
    energy_.l2DataRead += 1;
    memWriteback(line.addr, home, line.value);
  }
  bankOf(home).l2.invalidate(line);
}

void DragonProtocol::homeHandleRequest(const Message& msg) {
  const NodeId home = msg.dst;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;
  stageMark(block, Stage::Request);  // home fallback request leg
  Bank& bank = bankOf(home);
  energy_.l2TagProbe += 1;

  auto it = txns_.find(block);
  EECC_CHECK_MSG(it != txns_.end(), "home request without transaction");
  Txn& txn = it->second;

  // Catch any writeback still in flight for this block: its value is the
  // freshest copy anywhere, and the stale L2 array must not win the race.
  if (auto wb = pendingWb_.find(block); wb != pendingWb_.end())
    storeAtL2(home, block, wb->second.value, /*dirty=*/true);

  if (L2Line* line = bank.l2.find(block)) {
    energy_.l2DataRead += 1;
    stats_.l2DataHits += 1;
    bank.l2.touch(*line);
    txn.cls = MissClass::UnpredL2;
    txn.links += static_cast<std::uint32_t>(distance(home, requestor));
    Message data;
    data.type = kHomeData;
    data.cls = MsgClass::Data;
    data.src = home;
    data.dst = requestor;
    data.origin = requestor;
    data.addr = block;
    data.value = line->value;
    after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, data] {
      stageMark(data.addr, Stage::Service);  // home occupancy
      send(data);
    });
    return;
  }
  // Off-chip; the home keeps a clean copy of the fill for later readers.
  txn.cls = MissClass::Memory;
  txn.links += static_cast<std::uint32_t>(
      distance(home, cfg_.memControllerOf(block)) +
      distance(cfg_.memControllerOf(block), requestor));
  storeAtL2(home, block, memoryValue(block), /*dirty=*/false);
  memFetch(block, home, requestor, [this, block](std::uint64_t value) {
    auto t = txns_.find(block);
    EECC_CHECK(t != txns_.end());
    t->second.dataArrived = true;
    t->second.value = value;
    completeAccess(block);
  });
}

// ------------------------------------------------------------ Transactions

void DragonProtocol::startMiss(NodeId tile, Addr block, AccessType type,
                               DoneFn done) {
  Txn& txn = txns_[block];
  txn = Txn{};
  txn.requestor = tile;
  txn.type = type;
  txn.done = std::move(done);
  txn.start = events_.now();

  if (type == AccessType::Write) {
    // Commit up front so the update wave broadcasts the new value. Safe
    // because the line lock spans the whole transaction: nobody reads the
    // block (monitors relax to the monotone check while it is busy) until
    // every copy — including the writer's — holds this value.
    txn.newValue = commitWrite(block);
    if (tileOf(tile).l1.find(block) != nullptr) {
      txn.needsData = false;  // Sc/Sm update transaction, data is local
      stats_.upgrades += 1;
    }
  }

  txn.acksOutstanding = static_cast<std::int32_t>(cfg_.tiles()) - 1;
  // Critical path: the snoop wave out to the farthest tile and its ack
  // back; the home fallback adds its own hops on top.
  txn.links += 2 * maxDist_[static_cast<std::size_t>(tile)];

  Message req;
  req.type = kSnoopReq;
  req.src = tile;
  req.addr = block;
  req.requestor = tile;
  req.aux = type == AccessType::Write ? 1 : 0;
  req.value = txn.newValue;
  // Updates push a data payload to every tile, so the whole wave is Data
  // class — the energy ledger's measure of Dragon's broadcast cost.
  if (type == AccessType::Write) req.cls = MsgClass::Data;
  sendBroadcast(req);
  if (txn.acksOutstanding == 0) onAllAcks(block, txn);  // single-tile chip
}

void DragonProtocol::onAllAcks(Addr block, Txn& txn) {
  if (txn.needsData && !txn.dataArrived) {
    // No cache supplied: fall back to the home bank (then memory).
    if (!txn.homeAsked) {
      txn.homeAsked = true;
      const NodeId home = homeOf(block);
      txn.links +=
          static_cast<std::uint32_t>(distance(txn.requestor, home));
      Message req;
      req.type = kHomeReq;
      req.src = txn.requestor;
      req.dst = home;
      req.addr = block;
      req.requestor = txn.requestor;
      send(req);
    }
    return;
  }
  completeAccess(block);
}

void DragonProtocol::completeAccess(Addr block) {
  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  if (txn.type == AccessType::Read) {
    installL1(txn.requestor, block,
              txn.sharedSeen ? L1State::Sc : L1State::E, txn.value);
    recordRead(txn.requestor, txn.value);
  } else {
    // Sharers kept their (updated) copies, so the writer is the owner of
    // a shared line — Sm — not exclusive M as under invalidation.
    installL1(txn.requestor, block,
              txn.sharedSeen ? L1State::Sm : L1State::M, txn.newValue);
  }
  recordMiss(block, txn.cls, txn.start, txn.links);
  const DoneFn done = std::move(txn.done);
  txns_.erase(it);
  done();
  releaseLine(block);
}

void DragonProtocol::onMessage(const Message& msg) {
  switch (msg.type) {
    case kSnoopReq:
      handleSnoop(msg);
      return;

    case kSnoopAck: {
      // An ack carrying data is the cache-to-cache transfer itself.
      stageMark(msg.addr,
                (msg.aux & 2) != 0 ? Stage::DataReturn : Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      Txn& txn = it->second;
      txn.acksOutstanding -= 1;
      EECC_CHECK(txn.acksOutstanding >= 0);
      if ((msg.aux & 1) != 0) txn.sharedSeen = true;
      if ((msg.aux & 2) != 0) {
        txn.dataArrived = true;
        txn.value = msg.value;
        txn.cls = MissClass::UnpredOwner;  // cache-to-cache transfer
      }
      if (txn.acksOutstanding == 0) onAllAcks(msg.addr, txn);
      return;
    }

    case kHomeReq:
      homeHandleRequest(msg);
      return;

    case kHomeData: {
      stageMark(msg.addr, Stage::DataReturn);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.dataArrived = true;
      it->second.value = msg.value;
      completeAccess(msg.addr);
      return;
    }

    case kWbData: {
      // Apply the buffered (latest) value, not the message's: same-block
      // writebacks can be delivered out of order.
      auto wb = pendingWb_.find(msg.addr);
      EECC_CHECK(wb != pendingWb_.end());
      storeAtL2(msg.dst, msg.addr, wb->second.value, /*dirty=*/true);
      if (--wb->second.count == 0) pendingWb_.erase(wb);
      return;
    }
  }
  EECC_CHECK_MSG(false, "unknown Dragon message type");
}

// ------------------------------------------------------------- Test hooks

namespace {
char stateChar(std::uint8_t s) {
  switch (s) {
    case kSc: return 'S';
    case kE: return 'E';
    case kSm: return 'O';  // shared-modified owner, MOESI's O to monitors
    case kM: return 'M';
  }
  return '?';
}
}  // namespace

DragonProtocol::LineView DragonProtocol::l1Line(NodeId tile,
                                                Addr block) const {
  const auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
  LineView v;
  if (const L1Line* line = l1.find(block)) {
    v.valid = true;
    v.value = line->value;
    v.state = stateChar(static_cast<std::uint8_t>(line->state));
  }
  return v;
}

void DragonProtocol::forEachL1Copy(
    const std::function<void(const L1CopyView&)>& fn) const {
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          L1CopyView v;
          v.tile = t;
          v.block = line.addr;
          v.state = stateChar(static_cast<std::uint8_t>(line.state));
          v.value = line.value;
          v.busy = lineBusy(line.addr);
          fn(v);
        });
  }
}

void DragonProtocol::forEachL2Block(
    const std::function<void(NodeId tile, Addr block)>& fn) const {
  for (NodeId h = 0; h < cfg_.tiles(); ++h)
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) { fn(h, line.addr); });
}

void DragonProtocol::auditInvariants(const AuditFailFn& fail) const {
  // Assumes quiesced blocks (in-flight ones are skipped). Per block: at
  // most one owner (E/Sm/M); E/M excludes other copies (Sm merely owns —
  // it legally coexists with Sc sharers); every copy holds the committed
  // value (the update waves keep sharers exact, not just monotone); the
  // home L2 value matches the committed value unless an owner exists.
  std::unordered_map<Addr, NodeId> owner;
  std::unordered_map<Addr, NodeId> exclusiveHolder;
  std::unordered_map<Addr, std::vector<NodeId>> holders;
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          if (lineBusy(line.addr)) return;
          holders[line.addr].push_back(t);
          if (line.state != L1State::Sc) {
            if (owner.contains(line.addr))
              fail("two owners (E/Sm/M): tiles " +
                   std::to_string(owner[line.addr]) + " and " +
                   std::to_string(t) + ", " + describeBlock(line.addr));
            owner[line.addr] = t;
          }
          if (line.state == L1State::E || line.state == L1State::M)
            exclusiveHolder[line.addr] = t;
          if (line.value != committedValue(line.addr))
            fail("L1 copy holds a stale value: tile " + std::to_string(t) +
                 ", " + describeBlock(line.addr));
        });
  }
  for (const auto& [block, list] : holders)
    if (exclusiveHolder.contains(block) && list.size() != 1)
      fail("E/M copy coexists with other copies: " + describeBlock(block));
  for (NodeId h = 0; h < cfg_.tiles(); ++h) {
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) {
          if (lineBusy(line.addr)) return;
          if (pendingWb_.contains(line.addr)) return;  // wb in flight
          if (!owner.contains(line.addr) &&
              line.value != committedValue(line.addr))
            fail("L2 value stale with no L1 owner: " +
                 describeBlock(line.addr));
        });
  }
}

}  // namespace eecc
