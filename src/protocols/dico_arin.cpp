#include "protocols/dico_arin.h"

namespace eecc {

namespace {
enum ArinMsg : std::uint16_t {
  kReq = Protocol::kFirstProtocolMsg,  // requestor -> predicted supplier
  kReqHome,         // requestor/forwarder -> home
  kFwd,             // home -> owner L1 (single-area blocks)
  kData,            // supplier -> requestor (plain sharer copy)
  kProviderGrant,   // global-mode data: the receiver becomes a provider
  kOwnerGrant,      // ownership + data
  kAckCount,        // control grant for upgrades
  kInval,           // owner -> sharer (single-area blocks)
  kInvalAck,        // sharer -> writer
  kChangeOwner,
  kChangeOwnerAck,
  kHint,
  kRelinquish,      // owner eviction -> home
  kGlobalize,       // former owner -> home (data copy on global transition)
  kRecall,
  kRecallData,
  kBcastInval,      // home -> every L1 (three-way invalidation, step 1)
  kBcastAck,        // every L1 -> requestor/home (step 2)
  kBcastUnblock     // requestor/home -> every L1 (step 3)
};

// The MOSI+E+P stable-state automaton as table data (DESIGN.md §15).
// State ids mirror DiCoArinProtocol::L1State declaration order. Arin's
// novel mechanisms — ownership dissolution on the first remote-area read
// and the three-way broadcast — stay behind escapes whose meaning is
// scoped to the dispatching event: Replace {0: supplier hint, 1: evict
// owner}; Snoop* {0: in-area supplier read, 1: remote read dissolving the
// ownership, 2: provider read, 3: owner write}.
constexpr std::uint8_t kS = 0, kE = 1, kM = 2, kO = 3, kP = 4;
constexpr tbl::Transition kArinTable[] = {
    // Core reads hit on any valid copy.
    {kS, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kE, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kM, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kO, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kP, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    // Core writes: E upgrades silently; an owner whose area-local map
    // shows no other sharer upgrades in place; S and P (global-mode
    // copies) need the home's three-way broadcast.
    {kS, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    {kM, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    {kO, tbl::Event::LocalWrite, tbl::Guard::SoleCopy, tbl::Outcome::Hit, kM,
     {tbl::Action::ChargeL1DirRead, tbl::Action::CommitWrite,
      tbl::Action::ChargeL1Write, tbl::Action::Touch}},
    {kO, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {tbl::Action::ChargeL1DirRead}},
    {kP, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    // Replacement: sharers AND providers evict silently (a stale home
    // ProPo is repaired through the forwarder identity, IV-B); owner
    // states hand the ownership over.
    {kS, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape0, tbl::Action::Invalidate}},
    {kE, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1, tbl::Action::Invalidate}},
    {kM, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1, tbl::Action::Invalidate}},
    {kO, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1, tbl::Action::Invalidate}},
    {kP, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape0, tbl::Action::Invalidate}},
    // Owner-directed invalidation (ack handled at the dispatch site).
    {kS, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kM, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kO, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kP, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    // Requests predicted (or forwarded) to this L1: owners serve in-area
    // reads directly and dissolve on remote-area reads; providers serve
    // any read (global blocks have no area restriction on suppliers).
    {kS, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopRead, tbl::Guard::SameArea, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape0}},
    {kE, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1}},
    {kM, tbl::Event::SnoopRead, tbl::Guard::SameArea, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape0}},
    {kM, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1}},
    {kO, tbl::Event::SnoopRead, tbl::Guard::SameArea, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape0}},
    {kO, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1}},
    {kP, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2}},
    {kS, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape3}},
    {kM, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape3}},
    {kO, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape3}},
    {kP, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
};
}  // namespace

tbl::ProtocolTable DiCoArinProtocol::makeStableTable() {
  return tbl::ProtocolTable("arin", kArinTable, /*numStates=*/5,
                            /*sharedState=*/kS, /*modifiedState=*/kM);
}

DiCoArinProtocol::DiCoArinProtocol(EventQueue& events, Network& net,
                                   const CmpConfig& cfg)
    : Protocol(events, net, cfg), table_(makeStableTable()) {
  EECC_CHECK_MSG(cfg_.numAreas <= kMaxAreas,
                 "simulation supports at most kMaxAreas areas");
  tiles_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  banks_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_.emplace_back(cfg_);
    banks_.emplace_back(cfg_);
  }
}

// ---------------------------------------------------------------- L1 side

bool DiCoArinProtocol::tryHit(NodeId tile, Addr block, AccessType type) {
  auto& tl = tileOf(tile);
  energy_.l1TagProbe += 1;
  L1Line* line = tl.l1.find(block);
  if (line == nullptr) return false;
  struct Ops {
    DiCoArinProtocol& p;
    Tile& tl;
    L1Line& line;
    NodeId tile;
    Addr block;
    bool guard(tbl::Guard) const {
      // SoleCopy: the area-local map shows no other sharer.
      NodeSet others = line.areaSharers;
      others.erase(tile);
      return others.empty();
    }
    void setState(std::uint8_t s) { line.state = static_cast<L1State>(s); }
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
        case tbl::Action::ChargeL1Write: p.energy_.l1DataWrite += 1; break;
        case tbl::Action::ChargeL1DirRead: p.energy_.l1DirRead += 1; break;
        case tbl::Action::Touch: tl.l1.touch(line); break;
        case tbl::Action::RecordRead: p.recordRead(tile, line.value); break;
        case tbl::Action::CommitWrite:
          line.dirty = true;
          line.value = p.commitWrite(block);
          break;
        default: EECC_CHECK_MSG(false, "action not in the hit vocabulary");
      }
    }
  } ops{*this, tl, *line, tile, block};
  return table_.run(static_cast<std::uint8_t>(line->state),
                    type == AccessType::Read ? tbl::Event::LocalRead
                                             : tbl::Event::LocalWrite,
                    ops) == tbl::Outcome::Hit;
}

void DiCoArinProtocol::installL1(NodeId tile, Addr block, L1State state,
                                 bool dirty, std::uint64_t value,
                                 NodeId supplier, const NodeSet& sharers) {
  auto& l1 = tileOf(tile).l1;
  L1Line* line = l1.find(block);
  if (line == nullptr) {
    L1Line* victim = l1.selectVictim(
        block, [this](const L1Line& l) { return lineBusy(l.addr); });
    if (victim == nullptr) victim = l1.selectVictim(block, nullptr);
    EECC_CHECK(victim != nullptr);
    if (victim->valid) evictL1Line(tile, *victim);
    line = &l1.install(*victim, block);
    energy_.l1TagProbe += 1;
  } else {
    l1.touch(*line);
  }
  line->state = state;
  line->dirty = dirty;
  line->value = value;
  line->supplier = supplier;
  line->areaSharers = sharers;
  energy_.l1DataWrite += 1;
  if (state == L1State::O) energy_.l1DirUpdate += 1;
}

void DiCoArinProtocol::evictL1Line(NodeId tile, L1Line& line) {
  struct Ops {
    DiCoArinProtocol& p;
    NodeId tile;
    L1Line& line;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t) {}
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::Escape0: p.retainSupplierHint(tile, line); break;
        case tbl::Action::Escape1: p.evictOwnerLine(tile, line); break;
        case tbl::Action::Invalidate:
          p.tileOf(tile).l1.invalidate(line);
          break;
        default:
          EECC_CHECK_MSG(false, "action not in the replace vocabulary");
      }
    }
  } ops{*this, tile, line};
  table_.run(static_cast<std::uint8_t>(line.state), tbl::Event::Replace, ops);
}

void DiCoArinProtocol::retainSupplierHint(NodeId tile, const L1Line& line) {
  if (line.supplier != kInvalidNode) {
    tileOf(tile).l1c.update(line.addr, line.supplier);
    energy_.l1cUpdate += 1;
  }
}

void DiCoArinProtocol::evictOwnerLine(NodeId tile, L1Line& line) {
  const Addr block = line.addr;
  energy_.l1DirRead += 1;
  NodeSet locals = line.areaSharers;
  locals.erase(tile);
  NodeId heir = kInvalidNode;
  locals.forEach([&](NodeId s) {
    if (heir != kInvalidNode) return;
    if (tileOf(s).l1.find(block) != nullptr) {
      heir = s;
    } else {
      Message probe;  // stale sharer refuses the transfer
      probe.type = kChangeOwner;
      probe.src = tile;
      probe.dst = s;
      probe.addr = block;
      send(probe);
    }
  });
  if (heir != kInvalidNode) {
    stats_.ownershipTransfers += 1;
    Message xfer;
    xfer.type = kChangeOwner;
    xfer.src = tile;
    xfer.dst = heir;
    xfer.addr = block;
    send(xfer);
    Message co;
    co.type = kChangeOwner;
    co.src = heir;
    co.dst = homeOf(block);
    co.origin = tile;  // maintenance of the evictor's footprint
    co.addr = block;
    send(co);
    Message ack;
    ack.type = kChangeOwnerAck;
    ack.src = homeOf(block);
    ack.dst = heir;
    ack.origin = tile;
    ack.addr = block;
    send(ack);
    NodeSet rest = locals;
    rest.erase(heir);
    rest.forEach([&](NodeId s) {
      stats_.hintMessages += 1;
      Message hint;
      hint.type = kHint;
      hint.src = tile;
      hint.dst = s;
      hint.addr = block;
      hint.requestor = heir;
      hint.origin = tile;
      send(hint);
    });
    L1Line* heirLine = tileOf(heir).l1.find(block);
    EECC_CHECK(heirLine != nullptr);
    heirLine->state = L1State::O;
    heirLine->dirty = line.dirty;
    heirLine->areaSharers = rest;
    energy_.l1DirUpdate += 1;
    setL2cOwner(block, heir);
    return;
  }
  // No live local sharers: relinquish to the home.
  Bank& bank = bankOf(homeOf(block));
  bank.l2c.invalidate(block);
  energy_.l2cUpdate += 1;
  if (line.dirty) {
    stats_.writebacks += 1;
    Message rel;
    rel.type = kRelinquish;
    rel.cls = MsgClass::Data;
    rel.src = tile;
    rel.dst = homeOf(block);
    rel.addr = block;
    rel.value = line.value;
    send(rel);
    L2Line& l2 = storeAtL2(homeOf(block), block, line.value, true);
    l2.mode = L2Mode::SingleAreaOwner;
    l2.area = areaOf(tile);
    l2.sharers.clear();
  } else {
    Message note;
    note.type = kRelinquish;
    note.src = tile;
    note.dst = homeOf(block);
    note.addr = block;
    send(note);
    if (L2Line* l2line = bank.l2.find(block)) {
      // The retained copy becomes the single-area owner again.
      l2line->mode = L2Mode::SingleAreaOwner;
      l2line->area = areaOf(tile);
      l2line->sharers.clear();
      energy_.l2DirUpdate += 1;
    }
  }
}

// --------------------------------------------------------------- Home side

NodeId DiCoArinProtocol::l2cOwner(Addr block) const {
  const Bank& bank = banks_[static_cast<std::size_t>(cfg_.homeOf(block))];
  return const_cast<CoherenceCache&>(bank.l2c).lookup(block)
      .value_or(kInvalidNode);
}

bool DiCoArinProtocol::isGlobal(Addr block) const {
  const Bank& bank = banks_[static_cast<std::size_t>(cfg_.homeOf(block))];
  const L2Line* line = bank.l2.find(block);
  return line != nullptr && line->mode == L2Mode::Global;
}

void DiCoArinProtocol::setL2cOwner(Addr block, NodeId owner) {
  Bank& bank = bankOf(homeOf(block));
  energy_.l2cUpdate += 1;
  if (auto displaced = bank.l2c.update(
          block, owner, [this](Addr a) { return lineBusy(a); })) {
    recallOwnership(displaced->first, displaced->second);
  }
}

void DiCoArinProtocol::recallOwnership(Addr block, NodeId owner) {
  const NodeId home = homeOf(block);
  Message recall;
  recall.type = kRecall;
  recall.src = home;
  recall.dst = owner;
  recall.addr = block;
  send(recall);

  L1Line* line = tileOf(owner).l1.find(block);
  if (line == nullptr) return;
  EECC_CHECK(line->isOwner());
  Message back;
  back.type = kRecallData;
  back.cls = line->dirty ? MsgClass::Data : MsgClass::Control;
  back.src = owner;
  back.dst = home;
  back.origin = home;  // home-side maintenance (L2C$ displacement)
  back.addr = block;
  back.value = line->value;
  send(back);

  L2Line& l2 = storeAtL2(home, block, line->value, line->dirty);
  l2.mode = L2Mode::SingleAreaOwner;
  l2.area = areaOf(owner);
  l2.sharers = line->areaSharers;
  l2.sharers.insert(owner);
  line->state = L1State::S;
  line->dirty = false;
  line->areaSharers.clear();
  energy_.l1DirUpdate += 1;
  stats_.ownershipTransfers += 1;
}

DiCoArinProtocol::L2Line& DiCoArinProtocol::storeAtL2(NodeId home, Addr block,
                                                      std::uint64_t value,
                                                      bool dirty) {
  Bank& bank = bankOf(home);
  energy_.l2DataWrite += 1;
  L2Line* line = bank.l2.find(block);
  if (line == nullptr) {
    L2Line* victim = bank.l2.selectVictim(
        block, [this](const L2Line& l) { return lineBusy(l.addr); });
    if (victim == nullptr) victim = bank.l2.selectVictim(block, nullptr);
    EECC_CHECK(victim != nullptr);
    if (victim->valid) evictL2Line(home, *victim);
    line = &bank.l2.install(*victim, block);
    line->dirty = false;
  } else {
    bank.l2.touch(*line);
  }
  line->value = value;
  line->dirty = line->dirty || dirty;
  energy_.l2DirUpdate += 1;
  return *line;
}

void DiCoArinProtocol::evictL2Line(NodeId home, L2Line& line) {
  stats_.l2Evictions += 1;
  const Addr block = line.addr;
  if (bankOf(home).l2c.lookup(block).has_value()) {
    // Retained (possibly stale) copy under an L1 owner: drop silently.
    bankOf(home).l2.invalidate(line);
    return;
  }
  const bool global = line.mode == L2Mode::Global;
  const NodeSet sharers = line.sharers;
  if (line.dirty) {
    energy_.l2DataRead += 1;
    memWriteback(block, home, line.value);
  }
  bankOf(home).l2.invalidate(line);

  if (global) {
    // Three-way broadcast invalidation with the home collecting the acks
    // (Section IV-B1, L2 replacement case).
    withLine(block, [this, home, block] {
      Txn& txn = txns_[block];
      txn = Txn{};
      txn.background = true;
      txn.requestor = home;
      txn.bgAcks = cfg_.tiles();
      stats_.broadcastInvalidations += 1;
      stats_.dirEvictionInvalidations += 1;
      Message bcast;
      bcast.type = kBcastInval;
      bcast.src = home;
      bcast.addr = block;
      bcast.requestor = home;
      sendBroadcast(bcast);
    });
    return;
  }
  if (sharers.empty()) return;
  // Single-area block owned by the L2: targeted invalidation of the map.
  withLine(block, [this, home, block, sharers] {
    Txn& txn = txns_[block];
    txn = Txn{};
    txn.background = true;
    txn.requestor = home;
    txn.bgAcks = sharers.size();
    stats_.dirEvictionInvalidations += 1;
    sharers.forEach([this, home, block](NodeId s) {
      stats_.invalidationsSent += 1;
      Message inv;
      inv.type = kInval;
      inv.src = home;
      inv.dst = s;
      inv.addr = block;
      inv.requestor = home;
      send(inv);
    });
  });
}

void DiCoArinProtocol::globalizeFromOwner(NodeId owner, L1Line& line,
                                          NodeId firstRemote) {
  const Addr block = line.addr;
  // The former owner sends the data to the home L2, which becomes a
  // provider (and the ordering point); the former owner stays on as a
  // provider too (Section III-B).
  stats_.ownershipTransfers += 1;
  stats_.providershipTransfers += 1;  // global transitions (diagnostics)
  Message toHome;
  toHome.type = kGlobalize;
  toHome.cls = MsgClass::Data;
  toHome.src = owner;
  toHome.dst = homeOf(block);
  toHome.origin = firstRemote;  // the read that pushed the block global
  toHome.addr = block;
  toHome.value = line.value;
  send(toHome);

  Bank& bank = bankOf(homeOf(block));
  bank.l2c.invalidate(block);
  energy_.l2cUpdate += 1;
  L2Line& l2 = storeAtL2(homeOf(block), block, line.value, line.dirty);
  l2.mode = L2Mode::Global;
  l2.sharers.clear();
  l2.providers = emptyProPos();
  l2.providers[static_cast<std::size_t>(areaOf(owner))] = owner;
  l2.providers[static_cast<std::size_t>(areaOf(firstRemote))] = firstRemote;

  line.state = L1State::P;
  line.dirty = false;
  line.areaSharers.clear();
  energy_.l1DirUpdate += 1;
}

// ------------------------------------------------------------ Transactions

void DiCoArinProtocol::startMiss(NodeId tile, Addr block, AccessType type,
                                 DoneFn done) {
  Txn& txn = txns_[block];
  txn = Txn{};
  txn.requestor = tile;
  txn.type = type;
  txn.done = std::move(done);
  txn.start = events_.now();

  auto& tl = tileOf(tile);
  L1Line* line = tl.l1.find(block);

  if (type == AccessType::Write && line != nullptr) {
    txn.needsData = false;
    stats_.upgrades += 1;
    if (line->isOwner()) {
      // Owner upgrade with sharers: invalidate the local map directly.
      energy_.l1DirRead += 1;
      NodeSet targets = line->areaSharers;
      targets.erase(tile);
      txn.acksOutstanding = targets.size();
      targets.forEach([this, tile, block](NodeId s) {
        stats_.invalidationsSent += 1;
        Message inv;
        inv.type = kInval;
        inv.src = tile;
        inv.dst = s;
        inv.addr = block;
        inv.requestor = tile;
        after(cfg_.l1.tagLatency, [this, inv] {
          stageMark(inv.addr, Stage::Service);  // requestor is the orderer
          send(inv);
        });
      });
      line->areaSharers.clear();
      txn.ackCountKnown = true;
      txn.becomeOwner = true;
      txn.grantArrived = true;
      txn.cls = MissClass::PredOwnerHit;
      maybeCompleteAccess(block);
      return;
    }
    if (line->state == L1State::P) {
      // Writes to global blocks are ordered at the home; providers cannot
      // resolve them. Skip the prediction and go straight there.
      txn.links += static_cast<std::uint32_t>(distance(tile, homeOf(block)));
      Message req;
      req.type = kReqHome;
      req.src = tile;
      req.dst = homeOf(block);
      req.addr = block;
      req.requestor = tile;
      req.aux = 1;
      send(req);
      return;
    }
  }

  NodeId target = kInvalidNode;
  if (cfg_.enablePrediction) {
    energy_.l1cProbe += 1;
    if (line != nullptr && line->supplier != kInvalidNode) {
      target = line->supplier;
    } else if (auto pred = tl.l1c.lookup(block)) {
      target = *pred;
    }
    if (target == tile) target = kInvalidNode;
  }

  Message req;
  req.addr = block;
  req.requestor = tile;
  req.src = tile;
  req.aux = type == AccessType::Write ? 1 : 0;
  if (target != kInvalidNode) {
    txn.predicted = true;
    req.type = kReq;
    req.dst = target;
  } else {
    req.type = kReqHome;
    req.dst = homeOf(block);
  }
  txn.links += static_cast<std::uint32_t>(distance(tile, req.dst));
  send(req);
}

void DiCoArinProtocol::ownerServeRemoteRead(NodeId tile, L1Line& line,
                                            const Message& msg) {
  const NodeId requestor = msg.requestor;
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;

  // First remote-area read: the ownership dissolves (Section III-B).
  if (txn.cls == MissClass::UnpredL2) {
    if (txn.predicted && !txn.throughHome)
      txn.cls = MissClass::PredOwnerHit;
    else if (txn.predicted)
      txn.cls = MissClass::PredMiss;
    else
      txn.cls = MissClass::UnpredOwner;
  }
  energy_.l1DataRead += 1;
  txn.links += static_cast<std::uint32_t>(distance(tile, requestor));
  Message grant;
  grant.type = kProviderGrant;
  grant.cls = MsgClass::Data;
  grant.src = tile;
  grant.dst = requestor;
  grant.origin = requestor;
  grant.addr = msg.addr;
  grant.value = line.value;
  grant.forwarder = tile;
  after(cfg_.l1.tagLatency + cfg_.l1.dataLatency, [this, grant] {
    stageMark(grant.addr, Stage::Service);  // owner occupancy
    send(grant);
  });
  globalizeFromOwner(tile, line, requestor);
}

void DiCoArinProtocol::supplierServeRead(NodeId node, L1Line& line,
                                         const Message& msg,
                                         bool asProvider) {
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  const NodeId requestor = msg.requestor;

  energy_.l1DataRead += 1;
  if (asProvider && sameArea(node, requestor))
    stats_.providerResolvedMisses += 1;
  if (!asProvider) {
    energy_.l1DirUpdate += 1;
    line.areaSharers.insert(requestor);
    if (line.state == L1State::E || line.state == L1State::M)
      line.state = L1State::O;
  }
  if (txn.cls == MissClass::UnpredL2) {
    if (txn.predicted && !txn.throughHome)
      txn.cls = asProvider ? MissClass::PredProviderHit
                           : MissClass::PredOwnerHit;
    else if (txn.predicted)
      txn.cls = MissClass::PredMiss;
    else
      txn.cls = MissClass::UnpredOwner;
  }
  txn.links += static_cast<std::uint32_t>(distance(node, requestor));
  Message data;
  // Copies of global blocks make their receiver a provider (III-B).
  data.type = asProvider ? kProviderGrant : kData;
  data.cls = MsgClass::Data;
  data.src = node;
  data.dst = requestor;
  data.origin = requestor;
  data.addr = msg.addr;
  data.value = line.value;
  data.forwarder = node;
  after(cfg_.l1.tagLatency + cfg_.l1.dataLatency, [this, data] {
    stageMark(data.addr, Stage::Service);  // supplier occupancy
    send(data);
  });
}

void DiCoArinProtocol::ownerServeWrite(NodeId node, L1Line& line,
                                       const Message& msg) {
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;

  energy_.l1DataRead += 1;
  energy_.l1DirRead += 1;
  NodeSet targets = line.areaSharers;
  targets.erase(requestor);
  targets.erase(node);
  txn.acksOutstanding += targets.size();
  txn.ackCountKnown = true;
  targets.forEach([this, node, block, requestor](NodeId s) {
    stats_.invalidationsSent += 1;
    Message inv;
    inv.type = kInval;
    inv.src = node;
    inv.dst = s;
    inv.addr = block;
    inv.requestor = requestor;
    after(cfg_.l1.tagLatency, [this, inv] {
      stageMark(inv.addr, Stage::Service);  // owner occupancy
      send(inv);
    });
  });

  if (txn.cls == MissClass::UnpredL2) {
    if (txn.predicted && !txn.throughHome) txn.cls = MissClass::PredOwnerHit;
    else if (txn.predicted) txn.cls = MissClass::PredMiss;
    else txn.cls = MissClass::UnpredOwner;
  }
  txn.becomeOwner = true;
  txn.links += static_cast<std::uint32_t>(distance(node, requestor));
  Message grant;
  grant.type = txn.needsData ? kOwnerGrant : kAckCount;
  grant.cls = txn.needsData ? MsgClass::Data : MsgClass::Control;
  grant.src = node;
  grant.dst = requestor;
  grant.origin = requestor;
  grant.addr = block;
  grant.value = line.value;
  after(cfg_.l1.tagLatency + cfg_.l1.dataLatency, [this, grant] {
    stageMark(grant.addr, Stage::Service);  // owner occupancy
    send(grant);
  });

  Message co;
  co.type = kChangeOwner;
  co.src = node;
  co.dst = homeOf(block);
  co.origin = requestor;
  co.addr = block;
  send(co);
  Message ack;
  ack.type = kChangeOwnerAck;
  ack.src = homeOf(block);
  ack.dst = requestor;
  ack.origin = requestor;
  ack.addr = block;
  send(ack);
  setL2cOwner(block, requestor);
  stats_.ownershipTransfers += 1;
  tileOf(node).l1.invalidate(line);
}

void DiCoArinProtocol::handleRequestAtL1(const Message& msg) {
  stageMark(msg.addr, Stage::Request);  // predicted / forwarded request leg
  const NodeId tile = msg.dst;
  energy_.l1TagProbe += 1;
  L1Line* line = tileOf(tile).l1.find(msg.addr);
  const bool isWrite = msg.aux != 0;
  const NodeId requestor = msg.requestor;

  // Fig. 5: a write request names the next owner; remember it.
  if (isWrite && requestor != tile) {
    tileOf(tile).l1c.update(msg.addr, requestor);
    energy_.l1cUpdate += 1;
  }

  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;

  struct Ops {
    DiCoArinProtocol& p;
    NodeId tile;
    L1Line* line;
    const Message& msg;
    bool guard(tbl::Guard) const {
      return p.sameArea(msg.requestor, tile);  // SameArea: supplier scope
    }
    void setState(std::uint8_t s) { line->state = static_cast<L1State>(s); }
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::Escape0:
          p.supplierServeRead(tile, *line, msg, /*asProvider=*/false);
          break;
        case tbl::Action::Escape1:
          p.ownerServeRemoteRead(tile, *line, msg);
          break;
        case tbl::Action::Escape2:
          p.supplierServeRead(tile, *line, msg, /*asProvider=*/true);
          break;
        case tbl::Action::Escape3: p.ownerServeWrite(tile, *line, msg); break;
        default: EECC_CHECK_MSG(false, "action not in the snoop vocabulary");
      }
    }
  } ops{*this, tile, line, msg};
  if (line != nullptr &&
      table_.run(static_cast<std::uint8_t>(line->state),
                 isWrite ? tbl::Event::SnoopWrite : tbl::Event::SnoopRead,
                 ops) != tbl::Outcome::Miss) {
    return;
  }
  // Cannot act here: forward to the home with the forwarder identity so a
  // stale provider pointer can be repaired (Section IV-B).
  txn.throughHome = true;
  txn.links += static_cast<std::uint32_t>(distance(tile, homeOf(msg.addr)));
  Message fwd = msg;
  fwd.type = kReqHome;
  fwd.src = tile;
  fwd.dst = homeOf(msg.addr);
  fwd.forwarder = tile;
  send(fwd);
}

void DiCoArinProtocol::serveGlobalRead(NodeId home, L2Line& line,
                                       const Message& msg) {
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  const NodeId requestor = msg.requestor;
  const AreaId aR = areaOf(requestor);

  energy_.l2DataRead += 1;
  energy_.l2DirRead += 1;
  stats_.l2DataHits += 1;

  // Forwarder-identity repair: if the pointer for the forwarder's area
  // still names the forwarder, that cache is no longer a provider.
  if (msg.forwarder != kInvalidNode) {
    const auto fa = static_cast<std::size_t>(areaOf(msg.forwarder));
    if (line.providers[fa] == msg.forwarder)
      line.providers[fa] = kInvalidNode;
  }
  // The provider identity for the requestor's area travels with the data
  // so the requestor can predict it next time; with none recorded, the
  // requestor itself becomes the area's provider.
  NodeId hint = line.providers[static_cast<std::size_t>(aR)];
  if (hint == kInvalidNode || hint == requestor) {
    line.providers[static_cast<std::size_t>(aR)] = requestor;
    hint = kInvalidNode;
  }
  energy_.l2DirUpdate += 1;

  if (txn.cls == MissClass::UnpredL2 && txn.predicted)
    txn.cls = MissClass::PredMiss;
  txn.links += static_cast<std::uint32_t>(distance(home, requestor));
  Message grant;
  grant.type = kProviderGrant;
  grant.cls = MsgClass::Data;
  grant.src = home;
  grant.dst = requestor;
  grant.origin = requestor;
  grant.addr = msg.addr;
  grant.value = line.value;
  grant.forwarder = hint;  // L1C$ hint: the provider of the area (if any)
  after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, grant] {
    stageMark(grant.addr, Stage::Service);  // home occupancy
    send(grant);
  });
}

void DiCoArinProtocol::startGlobalWrite(NodeId home, L2Line& line,
                                        const Message& msg) {
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;

  energy_.l2DataRead += 1;
  stats_.l2DataHits += 1;
  stats_.broadcastInvalidations += 1;
  if (txn.cls == MissClass::UnpredL2 && txn.predicted)
    txn.cls = MissClass::PredMiss;

  // Three-way invalidation (IV-B1): broadcast, all-L1 acks to the writer,
  // unblock broadcast from the writer once complete.
  txn.acksOutstanding += cfg_.tiles();
  txn.ackCountKnown = true;
  txn.unblockPending = true;
  txn.becomeOwner = true;
  Message bcast;
  bcast.type = kBcastInval;
  bcast.src = home;
  bcast.addr = block;
  bcast.requestor = requestor;
  after(cfg_.l2.tagLatency, [this, bcast] {
    stageMark(bcast.addr, Stage::Service);  // home occupancy
    sendBroadcast(bcast);
  });

  txn.links += static_cast<std::uint32_t>(distance(home, requestor));
  Message grant;
  grant.type = txn.needsData ? kOwnerGrant : kAckCount;
  grant.cls = txn.needsData ? MsgClass::Data : MsgClass::Control;
  grant.src = home;
  grant.dst = requestor;
  grant.origin = requestor;
  grant.addr = block;
  grant.value = line.value;
  after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, grant] {
    stageMark(grant.addr, Stage::Service);  // home occupancy
    send(grant);
  });

  // The block leaves global mode: the writer owns it alone; the home
  // retains a stale (never-served) copy.
  line.mode = L2Mode::SingleAreaOwner;
  line.area = areaOf(requestor);
  line.dirty = false;
  line.sharers.clear();
  line.providers = emptyProPos();
  setL2cOwner(block, requestor);
}

void DiCoArinProtocol::handleRequestAtHome(const Message& msg) {
  const NodeId home = msg.dst;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;
  stageMark(block, Stage::Request);  // request reached the home
  const bool isWrite = msg.aux != 0;
  Bank& bank = bankOf(home);
  energy_.l2TagProbe += 1;
  energy_.l2cProbe += 1;

  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;

  if (auto owner = bank.l2c.lookup(block)) {
    EECC_CHECK_MSG(*owner != requestor,
                   "L2C$ points at the requestor of a miss");
    txn.links += static_cast<std::uint32_t>(distance(home, *owner));
    Message fwd = msg;
    fwd.type = kFwd;
    fwd.src = home;
    fwd.dst = *owner;
    after(cfg_.l2.tagLatency, [this, fwd] {
      stageMark(fwd.addr, Stage::Service);  // home occupancy
      send(fwd);
    });
    return;
  }

  L2Line* line = bank.l2.find(block);
  if (line != nullptr) {
    if (line->mode == L2Mode::Global) {
      if (isWrite) startGlobalWrite(home, *line, msg);
      else serveGlobalRead(home, *line, msg);
      return;
    }
    // Single-area block owned by the home L2.
    energy_.l2DirRead += 1;
    const bool remoteRead =
        !isWrite && !line->sharers.empty() &&
        areaOf(requestor) != line->area;
    if (remoteRead) {
      // "The L2 becomes a provider immediately upon the reception of the
      // request": the block turns global with the home as ordering point.
      energy_.l2DataRead += 1;
      stats_.l2DataHits += 1;
      stats_.providershipTransfers += 1;  // global transition
      line->mode = L2Mode::Global;
      line->providers = emptyProPos();
      line->providers[static_cast<std::size_t>(areaOf(requestor))] =
          requestor;
      line->sharers.clear();
      energy_.l2DirUpdate += 1;
      if (txn.cls == MissClass::UnpredL2 && txn.predicted)
        txn.cls = MissClass::PredMiss;
      txn.links += static_cast<std::uint32_t>(distance(home, requestor));
      Message grant;
      grant.type = kProviderGrant;
      grant.cls = MsgClass::Data;
      grant.src = home;
      grant.dst = requestor;
      grant.origin = requestor;
      grant.addr = block;
      grant.value = line->value;
      after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, grant] {
        stageMark(grant.addr, Stage::Service);  // home occupancy
        send(grant);
      });
      return;
    }
    energy_.l2DataRead += 1;
    stats_.l2DataHits += 1;
    if (!isWrite) {
      // Single-area DiCo behaviour: the home keeps the ownership on
      // reads and tracks the requestor in the area map.
      if (line->sharers.empty()) line->area = areaOf(requestor);
      line->sharers.insert(requestor);
      energy_.l2DirUpdate += 1;
      if (txn.cls == MissClass::UnpredL2 && txn.predicted)
        txn.cls = MissClass::PredMiss;
      txn.links += static_cast<std::uint32_t>(distance(home, requestor));
      Message data;
      data.type = kData;
      data.cls = MsgClass::Data;
      data.src = home;
      data.dst = requestor;
      data.origin = requestor;
      data.addr = block;
      data.value = line->value;
      data.forwarder = home;
      after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, data] {
        stageMark(data.addr, Stage::Service);  // home occupancy
        send(data);
      });
      return;
    }
    // Writes migrate the ownership to the requestor.
    NodeSet sharers = line->sharers;
    sharers.erase(requestor);
    txn.acksOutstanding += sharers.size();
    sharers.forEach([this, home, block, requestor](NodeId s) {
      stats_.invalidationsSent += 1;
      Message inv;
      inv.type = kInval;
      inv.src = home;
      inv.dst = s;
      inv.addr = block;
      inv.requestor = requestor;
      after(cfg_.l2.tagLatency, [this, inv] {
        stageMark(inv.addr, Stage::Service);  // home occupancy
        send(inv);
      });
    });
    txn.ackCountKnown = true;
    txn.becomeOwner = true;
    txn.grantDirty = line->dirty;
    if (txn.cls == MissClass::UnpredL2 && txn.predicted)
      txn.cls = MissClass::PredMiss;
    txn.links += static_cast<std::uint32_t>(distance(home, requestor));
    Message grant;
    grant.type = txn.needsData ? kOwnerGrant : kAckCount;
    grant.cls = txn.needsData ? MsgClass::Data : MsgClass::Control;
    grant.src = home;
    grant.dst = requestor;
    grant.origin = requestor;
    grant.addr = block;
    grant.value = line->value;
    after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, grant] {
      stageMark(grant.addr, Stage::Service);  // home occupancy
      send(grant);
    });
    // Non-inclusive retention: the copy stays while an L1 owns the block.
    line->dirty = false;
    line->sharers.clear();
    setL2cOwner(block, requestor);
    return;
  }

  // Off-chip. Adaptive ownership placement (see DESIGN.md): read fills
  // migrate the ownership only if the L2C$ can track it; otherwise the
  // home owns the filled line (single-area mode, requestor as sharer).
  txn.ackCountKnown = true;
  txn.cls = MissClass::Memory;
  txn.links += static_cast<std::uint32_t>(
      distance(home, cfg_.memControllerOf(block)) +
      distance(cfg_.memControllerOf(block), requestor));
  {
    L2Line& fill = storeAtL2(home, block, memoryValue(block), false);
    fill.mode = L2Mode::SingleAreaOwner;
    fill.area = areaOf(requestor);
    fill.sharers.clear();
    fill.providers = emptyProPos();
    if (isWrite ||
        !bank.l2c.wouldDisplace(block, [this](Addr a) { return lineBusy(a); })) {
      txn.becomeOwner = true;
      setL2cOwner(block, requestor);
    } else {
      fill.sharers.insert(requestor);
      energy_.l2DirUpdate += 1;
    }
  }
  memFetch(block, home, requestor, [this, block](std::uint64_t value) {
    auto t = txns_.find(block);
    EECC_CHECK(t != txns_.end());
    t->second.dataArrived = true;
    t->second.grantArrived = true;
    t->second.value = value;
    maybeCompleteAccess(block);
  });
}

void DiCoArinProtocol::maybeCompleteAccess(Addr block) {
  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  EECC_CHECK(!txn.background);

  const bool dataReady =
      txn.dataArrived || (!txn.needsData && txn.grantArrived);
  if (!dataReady || !txn.ackCountKnown || txn.acksOutstanding != 0 ||
      txn.coreNotified)
    return;
  txn.coreNotified = true;

  const NodeId tile = txn.requestor;
  if (txn.unblockPending) {
    // Step 3 of the three-way invalidation: let the L1 caches respond to
    // requests for the block again.
    Message unblock;
    unblock.type = kBcastUnblock;
    unblock.src = tile;
    unblock.addr = block;
    sendBroadcast(unblock);
  }

  if (txn.type == AccessType::Read) {
    if (txn.becomeOwner) {
      const L1State st = !txn.grantSharers.empty() ? L1State::O
                         : txn.grantDirty          ? L1State::M
                                                   : L1State::E;
      installL1(tile, block, st, txn.grantDirty, txn.value, kInvalidNode,
                txn.grantSharers);
      txn.grantSharers.forEach([this, tile, block](NodeId s) {
        stats_.hintMessages += 1;
        Message hint;
        hint.type = kHint;
        hint.src = tile;
        hint.dst = s;
        hint.addr = block;
        hint.requestor = tile;
        send(hint);
      });
    } else if (txn.becomeProvider) {
      installL1(tile, block, L1State::P, false, txn.value, txn.supplier,
                NodeSet{});
    } else {
      installL1(tile, block, L1State::S, false, txn.value, txn.supplier,
                NodeSet{});
    }
    recordRead(tile, txn.value);
  } else {
    installL1(tile, block, L1State::M, true, 0, kInvalidNode, NodeSet{});
    L1Line* line = tileOf(tile).l1.find(block);
    EECC_CHECK(line != nullptr);
    line->value = commitWrite(block);
  }
  recordMiss(block, txn.cls, txn.start, txn.links);
  auto done = std::move(txn.done);
  txns_.erase(it);
  releaseLine(block);
  done();
}

void DiCoArinProtocol::onMessage(const Message& msg) {
  switch (msg.type) {
    case kReq:
    case kFwd:
      handleRequestAtL1(msg);
      return;
    case kReqHome:
      handleRequestAtHome(msg);
      return;

    case kData:
    case kProviderGrant:
    case kOwnerGrant: {
      stageMark(msg.addr, Stage::DataReturn);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      Txn& txn = it->second;
      txn.dataArrived = true;
      txn.grantArrived = true;
      txn.value = msg.value;
      txn.supplier = msg.forwarder;
      if (msg.type != kOwnerGrant) txn.ackCountKnown = true;
      if (msg.type == kProviderGrant) txn.becomeProvider = true;
      if (msg.forwarder != kInvalidNode && msg.forwarder != msg.dst) {
        tileOf(msg.dst).l1c.update(msg.addr, msg.forwarder);
        energy_.l1cUpdate += 1;
      }
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kAckCount: {
      stageMark(msg.addr, Stage::AckWait);
      auto ackIt = txns_.find(msg.addr);
      EECC_CHECK(ackIt != txns_.end());
      ackIt->second.grantArrived = true;
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kInval: {
      stageMark(msg.addr, Stage::Fanout);
      const NodeId tile = msg.dst;
      auto& tl = tileOf(tile);
      energy_.l1TagProbe += 1;
      if (L1Line* line = tl.l1.find(msg.addr)) {
        struct Ops {
          Tile& tl;
          L1Line& line;
          bool guard(tbl::Guard) const { return true; }
          void setState(std::uint8_t s) {
            line.state = static_cast<L1State>(s);
          }
          void act(tbl::Action a) {
            EECC_CHECK_MSG(a == tbl::Action::Invalidate,
                           "action not in the inval vocabulary");
            tl.l1.invalidate(line);
          }
        } ops{tl, *line};
        table_.run(static_cast<std::uint8_t>(line->state), tbl::Event::Inval,
                   ops);
      }
      if (msg.requestor != tile) {
        tl.l1c.update(msg.addr, msg.requestor);
        energy_.l1cUpdate += 1;
      }
      Message ack;
      ack.type = kInvalAck;
      ack.src = tile;
      ack.dst = msg.requestor;
      ack.origin = msg.requestor;  // the write that forced the invalidation
      ack.addr = msg.addr;
      after(cfg_.l1.tagLatency, [this, ack] { send(ack); });
      return;
    }

    case kInvalAck: {
      stageMark(msg.addr, Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      Txn& txn = it->second;
      if (txn.background) {
        txn.bgAcks -= 1;
        if (txn.bgAcks == 0) {
          const Addr block = msg.addr;
          txns_.erase(it);
          releaseLine(block);
        }
      } else {
        txn.acksOutstanding -= 1;
        EECC_CHECK(txn.acksOutstanding >= 0);
        maybeCompleteAccess(msg.addr);
      }
      return;
    }

    case kBcastInval: {
      // Step 1 arrives at every L1: invalidate any copy, block the line
      // (implicit under transaction serialization) and ack (step 2).
      stageMark(msg.addr, Stage::Fanout);
      const NodeId tile = msg.dst;
      energy_.l1TagProbe += 1;
      auto& l1 = tileOf(tile).l1;
      if (L1Line* line = l1.find(msg.addr)) l1.invalidate(*line);
      if (msg.requestor != tile && msg.requestor != homeOf(msg.addr)) {
        tileOf(tile).l1c.update(msg.addr, msg.requestor);
        energy_.l1cUpdate += 1;
      }
      Message ack;
      ack.type = kBcastAck;
      ack.src = tile;
      ack.dst = msg.requestor;
      ack.origin = msg.origin;  // writer or home (background), as tagged
      ack.addr = msg.addr;
      after(cfg_.l1.tagLatency, [this, ack] { send(ack); });
      return;
    }

    case kBcastAck: {
      stageMark(msg.addr, Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      Txn& txn = it->second;
      if (txn.background) {
        txn.bgAcks -= 1;
        if (txn.bgAcks == 0) {
          // Step 3 from the home (L2 replacement case).
          Message unblock;
          unblock.type = kBcastUnblock;
          unblock.src = txn.requestor;
          unblock.addr = msg.addr;
          sendBroadcast(unblock);
          const Addr block = msg.addr;
          txns_.erase(it);
          releaseLine(block);
        }
      } else {
        txn.acksOutstanding -= 1;
        EECC_CHECK(txn.acksOutstanding >= 0);
        maybeCompleteAccess(msg.addr);
      }
      return;
    }

    case kHint: {
      if (msg.requestor != msg.dst) {
        auto& tl = tileOf(msg.dst);
        tl.l1c.update(msg.addr, msg.requestor);
        energy_.l1cUpdate += 1;
        if (L1Line* line = tl.l1.find(msg.addr))
          if (line->state == L1State::S) line->supplier = msg.requestor;
      }
      return;
    }

    case kBcastUnblock:
    case kChangeOwner:
    case kChangeOwnerAck:
    case kRelinquish:
    case kGlobalize:
    case kRecall:
    case kRecallData:
      return;

    default:
      EECC_CHECK_MSG(false, "unknown DiCo-Arin message");
  }
}

// ------------------------------------------------------------ Introspection

DiCoArinProtocol::LineView DiCoArinProtocol::l1Line(NodeId tile,
                                                    Addr block) const {
  const auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
  LineView v;
  if (const L1Line* line = l1.find(block)) {
    v.valid = true;
    v.value = line->value;
    switch (line->state) {
      case L1State::S: v.state = 'S'; break;
      case L1State::E: v.state = 'E'; break;
      case L1State::M: v.state = 'M'; break;
      case L1State::O: v.state = 'O'; break;
      case L1State::P: v.state = 'P'; break;
    }
  }
  return v;
}

void DiCoArinProtocol::forEachL1Copy(
    const std::function<void(const L1CopyView&)>& fn) const {
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          L1CopyView v;
          v.tile = t;
          v.block = line.addr;
          v.state = line.state == L1State::M   ? 'M'
                    : line.state == L1State::E ? 'E'
                    : line.state == L1State::O ? 'O'
                    : line.state == L1State::P ? 'P'
                                               : 'S';
          v.value = line.value;
          v.busy = lineBusy(line.addr);
          fn(v);
        });
  }
}

void DiCoArinProtocol::forEachL2Block(
    const std::function<void(NodeId tile, Addr block)>& fn) const {
  for (NodeId h = 0; h < cfg_.tiles(); ++h)
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) { fn(h, line.addr); });
}

void DiCoArinProtocol::auditInvariants(const AuditFailFn& fail) const {
  std::unordered_map<Addr, NodeId> ownerOfBlock;
  std::unordered_map<Addr, std::vector<NodeId>> sharersOf;
  std::unordered_map<Addr, std::vector<NodeId>> providersOf;

  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          if (lineBusy(line.addr)) return;
          if (line.value != committedValue(line.addr))
            fail("L1 copy holds a stale value: tile " + std::to_string(t) +
                 ", " + describeBlock(line.addr));
          if (line.isOwner()) {
            if (ownerOfBlock.contains(line.addr))
              fail("two owners for one block: tiles " +
                   std::to_string(ownerOfBlock[line.addr]) + " and " +
                   std::to_string(t) + ", " + describeBlock(line.addr));
            ownerOfBlock[line.addr] = t;
          } else if (line.state == L1State::P) {
            providersOf[line.addr].push_back(t);
          } else {
            sharersOf[line.addr].push_back(t);
          }
        });
  }

  for (const auto& [block, owner] : ownerOfBlock) {
    if (l2cOwner(block) != owner)
      fail("L2C$ does not point at the L1 owner: " + describeBlock(block) +
           ", owner " + std::to_string(owner) + ", L2C$ says " +
           std::to_string(l2cOwner(block)));
    // Single-area invariant: all copies in the owner's area, covered by
    // its map.
    const L1Line* ol =
        tiles_[static_cast<std::size_t>(owner)].l1.find(block);
    if (auto it = sharersOf.find(block);
        it != sharersOf.end() && ol != nullptr) {
      for (const NodeId s : it->second) {
        if (cfg_.areaOf(s) != cfg_.areaOf(owner))
          fail("single-area block has a copy outside the area: tile " +
               std::to_string(s) + ", " + describeBlock(block));
        if (!ol->areaSharers.contains(s))
          fail("shared copy not covered by the owner's map: tile " +
               std::to_string(s) + ", owner " + std::to_string(owner) +
               ", " + describeBlock(block));
      }
    }
    if (providersOf.contains(block))
      fail("provider copies coexist with an L1 owner: " +
           describeBlock(block));
  }

  // Global blocks: always present at the home in global mode.
  for (const auto& [block, provs] : providersOf) {
    (void)provs;
    if (!isGlobal(block))
      fail("provider copies exist but the home L2 is not global: " +
           describeBlock(block));
  }

  for (NodeId h = 0; h < cfg_.tiles(); ++h) {
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) {
          if (lineBusy(line.addr)) return;
          if (l2cOwner(line.addr) != kInvalidNode) return;  // retained
          if (line.value != committedValue(line.addr))
            fail("L2 line holds a stale value: " + describeBlock(line.addr));
          if (line.mode == L2Mode::Global) {
            // ProPos point into the right areas (they may be stale after
            // silent provider evictions — that is the design).
            for (std::size_t a = 0; a < kMaxAreas; ++a) {
              const NodeId p = line.providers[a];
              if (p == kInvalidNode) continue;
              if (cfg_.areaOf(p) != static_cast<AreaId>(a))
                fail("global ProPo points outside its area: area " +
                     std::to_string(a) + " names tile " + std::to_string(p) +
                     ", " + describeBlock(line.addr));
            }
          } else {
            // Single-area L2-owned block: sharers confined to its area.
            line.sharers.forEach([&](NodeId s) {
              if (cfg_.areaOf(s) != line.area)
                fail("L2-owned sharer outside the recorded area: tile " +
                     std::to_string(s) + ", " + describeBlock(line.addr));
            });
          }
        });
  }

  // Sharers without an L1 owner must be covered by the home L2.
  for (const auto& [block, list] : sharersOf) {
    if (ownerOfBlock.contains(block)) continue;
    const Bank& bank = banks_[static_cast<std::size_t>(cfg_.homeOf(block))];
    const L2Line* line = bank.l2.find(block);
    if (line == nullptr) {
      fail("orphan shared copies: " + describeBlock(block));
      continue;
    }
    if (line->mode == L2Mode::SingleAreaOwner) {
      for (const NodeId s : list)
        if (!line->sharers.contains(s))
          fail("L2-owned sharer not in the home map: tile " +
               std::to_string(s) + ", " + describeBlock(block));
    }
    // Global mode: sharers are legal anywhere (broadcast covers them).
  }
}

}  // namespace eecc
