#include "protocols/dico.h"

namespace eecc {

namespace {
enum DiCoMsg : std::uint16_t {
  kReq = Protocol::kFirstProtocolMsg,  // requestor -> predicted supplier
  kReqHome,      // requestor/forwarder -> home (no prediction or bounce)
  kFwd,          // home -> owner L1 (precise, from the L2C$)
  kData,         // supplier -> requestor (aux = inval acks to expect,
                 //   requestor/forwarder fields carry grant info)
  kOwnerGrant,   // like kData but transfers ownership (aux = acks)
  kAckCount,     // control grant for upgrades (aux = acks)
  kInval,        // owner -> sharer (requestor = new owner / writer)
  kInvalAck,     // sharer -> requestor
  kChangeOwner,  // new/old owner -> home (handshake, charged)
  kChangeOwnerAck,  // home -> new owner (handshake, charged)
  kHint,         // old owner -> sharers: new supplier identity (Fig. 5)
  kRelinquish,   // owner L1 -> home (eviction, data if dirty)
  kRecall,       // home -> owner L1 (L2C$ entry eviction)
  kRecallData,   // owner L1 -> home
  kBgInval,      // home -> sharer (L2 eviction acting as owner+requestor)
  kBgInvalAck    // sharer -> home
};

bool isOwnerState(std::uint8_t s) { return s >= 1; }  // E, M, O

// The MOSI+E stable-state automaton as table data (DESIGN.md §15). State
// ids mirror DiCoProtocol::L1State declaration order. The owner-side
// mechanisms DiCo adds over a directory — sharer tracking at the owner,
// ownership migration, supplier prediction — stay behind escapes; the
// table names which states take them.
constexpr std::uint8_t kS = 0, kE = 1, kM = 2, kO = 3;
constexpr tbl::Transition kDiCoTable[] = {
    // Core reads hit on any valid copy.
    {kS, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kE, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kM, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kO, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    // Core writes: E upgrades silently; an owner whose (stale-free) sharing
    // code is empty upgrades in place, otherwise the sharers must be
    // invalidated first; S starts an upgrade transaction.
    {kS, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    {kM, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    {kO, tbl::Event::LocalWrite, tbl::Guard::SoleCopy, tbl::Outcome::Hit, kM,
     {tbl::Action::ChargeL1DirRead, tbl::Action::CommitWrite,
      tbl::Action::ChargeL1Write, tbl::Action::Touch}},
    {kO, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {tbl::Action::ChargeL1DirRead}},
    // Replacement: sharers evict silently, retaining the supplier identity
    // in the L1C$ (Section IV-A2); owner states hand the ownership to a
    // live sharer or relinquish it to the home (Section IV-A1).
    {kS, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape0, tbl::Action::Invalidate}},
    {kE, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1, tbl::Action::Invalidate}},
    {kM, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1, tbl::Action::Invalidate}},
    {kO, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1, tbl::Action::Invalidate}},
    // Owner-directed invalidation; the ack and the L1C$ next-owner hint
    // are the dispatch site's (they apply with or without a copy).
    {kS, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kM, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kO, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    // Requests predicted (or forwarded) to this L1: only an owner can
    // serve them; anything else is a misprediction that detours through
    // the home (Outcome::Miss at the dispatch site).
    {kS, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2}},
    {kM, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2}},
    {kO, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2}},
    {kS, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape3}},
    {kM, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape3}},
    {kO, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape3}},
};
}  // namespace

tbl::ProtocolTable DiCoProtocol::makeStableTable() {
  return tbl::ProtocolTable("dico", kDiCoTable, /*numStates=*/4,
                            /*sharedState=*/kS, /*modifiedState=*/kM);
}

DiCoProtocol::DiCoProtocol(EventQueue& events, Network& net,
                           const CmpConfig& cfg)
    : Protocol(events, net, cfg), table_(makeStableTable()) {
  tiles_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  banks_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_.emplace_back(cfg_);
    banks_.emplace_back(cfg_);
  }
  const char* st = std::getenv("EECC_CHECK_SELFTEST");
  selftestFault_ = st != nullptr && st[0] == '1';
}

// ---------------------------------------------------------------- L1 side

bool DiCoProtocol::tryHit(NodeId tile, Addr block, AccessType type) {
  auto& tl = tileOf(tile);
  energy_.l1TagProbe += 1;
  L1Line* line = tl.l1.find(block);
  if (line == nullptr) return false;
  struct Ops {
    DiCoProtocol& p;
    Tile& tl;
    L1Line& line;
    NodeId tile;
    Addr block;
    bool guard(tbl::Guard) const {
      return line.sharers.empty();  // SoleCopy: stale-free sharing code
    }
    void setState(std::uint8_t s) { line.state = static_cast<L1State>(s); }
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
        case tbl::Action::ChargeL1Write: p.energy_.l1DataWrite += 1; break;
        case tbl::Action::ChargeL1DirRead: p.energy_.l1DirRead += 1; break;
        case tbl::Action::Touch: tl.l1.touch(line); break;
        case tbl::Action::RecordRead: p.recordRead(tile, line.value); break;
        case tbl::Action::CommitWrite:
          line.dirty = true;
          line.value = p.commitWrite(block);
          break;
        default: EECC_CHECK_MSG(false, "action not in the hit vocabulary");
      }
    }
  } ops{*this, tl, *line, tile, block};
  return table_.run(static_cast<std::uint8_t>(line->state),
                    type == AccessType::Read ? tbl::Event::LocalRead
                                             : tbl::Event::LocalWrite,
                    ops) == tbl::Outcome::Hit;
}

void DiCoProtocol::installL1(NodeId tile, Addr block, L1State state,
                             bool dirty, std::uint64_t value, NodeId supplier,
                             const NodeSet& sharers) {
  auto& l1 = tileOf(tile).l1;
  L1Line* line = l1.find(block);
  if (line == nullptr) {
    L1Line* victim = l1.selectVictim(
        block, [this](const L1Line& l) { return lineBusy(l.addr); });
    if (victim == nullptr) victim = l1.selectVictim(block, nullptr);
    EECC_CHECK(victim != nullptr);
    if (victim->valid) evictL1Line(tile, *victim);
    line = &l1.install(*victim, block);
    energy_.l1TagProbe += 1;
  } else {
    l1.touch(*line);
  }
  line->state = state;
  line->dirty = dirty;
  line->value = value;
  line->supplier = supplier;
  line->sharers = sharers;
  energy_.l1DataWrite += 1;
  if (state == L1State::O || !sharers.empty()) energy_.l1DirUpdate += 1;
}

void DiCoProtocol::evictL1Line(NodeId tile, L1Line& line) {
  struct Ops {
    DiCoProtocol& p;
    NodeId tile;
    L1Line& line;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t) {}
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::Escape0: p.retainSupplierHint(tile, line); break;
        case tbl::Action::Escape1: p.evictOwnerLine(tile, line); break;
        case tbl::Action::Invalidate:
          p.tileOf(tile).l1.invalidate(line);
          break;
        default:
          EECC_CHECK_MSG(false, "action not in the replace vocabulary");
      }
    }
  } ops{*this, tile, line};
  table_.run(static_cast<std::uint8_t>(line.state), tbl::Event::Replace, ops);
}

void DiCoProtocol::retainSupplierHint(NodeId tile, const L1Line& line) {
  // Silent eviction; retain the supplier identity in the L1C$ so future
  // misses still resolve in two hops (Section IV-A2).
  if (line.supplier != kInvalidNode) {
    tileOf(tile).l1c.update(line.addr, line.supplier);
    energy_.l1cUpdate += 1;
  }
}

void DiCoProtocol::evictOwnerLine(NodeId tile, L1Line& line) {
  const Addr block = line.addr;
  // Owner eviction: hand the ownership to a (live) sharer, else to the home.
  energy_.l1DirRead += 1;
  NodeSet candidates = line.sharers;
  candidates.erase(tile);
  NodeId heir = kInvalidNode;
  candidates.forEach([&](NodeId s) {
    if (heir != kInvalidNode) return;
    if (tileOf(s).l1.find(block) != nullptr) {
      heir = s;
    } else {
      // A stale sharer refuses the ownership and forwards it on
      // (Section IV-A1); charge the wasted hop.
      Message probe;
      probe.type = kChangeOwner;
      probe.src = tile;
      probe.dst = s;
      probe.addr = block;
      send(probe);
    }
  });
  if (heir != kInvalidNode) {
    transferOwnership(tile, line, heir);
  } else {
    relinquishToHome(tile, line);
  }
}

void DiCoProtocol::transferOwnership(NodeId from, const L1Line& line,
                                     NodeId to) {
  const Addr block = line.addr;
  stats_.ownershipTransfers += 1;
  // Ownership + sharing code to the heir (control: it already has the data).
  Message xfer;
  xfer.type = kChangeOwner;
  xfer.src = from;
  xfer.dst = to;
  xfer.addr = block;
  send(xfer);
  // Change_Owner handshake with the home (heir -> home -> heir). The
  // whole handoff is maintenance of the evictor's footprint — tag it so.
  Message co;
  co.type = kChangeOwner;
  co.src = to;
  co.dst = homeOf(block);
  co.origin = from;
  co.addr = block;
  send(co);
  Message ack;
  ack.type = kChangeOwnerAck;
  ack.src = homeOf(block);
  ack.dst = to;
  ack.origin = from;
  ack.addr = block;
  send(ack);
  // Hints to the remaining sharers: the supplier moved (Fig. 5).
  NodeSet rest = line.sharers;
  rest.erase(to);
  rest.erase(from);
  rest.forEach([&](NodeId s) {
    stats_.hintMessages += 1;
    Message hint;
    hint.type = kHint;
    hint.src = from;
    hint.dst = s;
    hint.addr = block;
    hint.requestor = to;
    hint.origin = from;
    send(hint);
  });

  L1Line* heirLine = tileOf(to).l1.find(block);
  EECC_CHECK(heirLine != nullptr);
  heirLine->state = L1State::O;
  heirLine->dirty = line.dirty;
  heirLine->sharers = rest;
  energy_.l1DirUpdate += 1;
  setL2cOwner(block, to);
}

void DiCoProtocol::relinquishToHome(NodeId tile, const L1Line& line) {
  const Addr block = line.addr;
  clearL2cOwner(block);
  if (line.dirty) {
    stats_.writebacks += 1;
    Message wb;
    wb.type = kRelinquish;
    wb.cls = MsgClass::Data;
    wb.src = tile;
    wb.dst = homeOf(block);
    wb.addr = block;
    wb.value = line.value;
    send(wb);
    storeAtL2(homeOf(block), block, line.value, /*dirty=*/true, NodeSet{});
  } else {
    // Clean data: the home's retained L2 copy (if any) is current and the
    // home simply becomes the owner again; otherwise memory is current
    // and the block is dropped.
    Message note;
    note.type = kRelinquish;
    note.src = tile;
    note.dst = homeOf(block);
    note.addr = block;
    send(note);
    Bank& bank = bankOf(homeOf(block));
    if (L2Line* line = bank.l2.find(block)) {
      line->sharers.clear();
      energy_.l2DirUpdate += 1;
    }
  }
}

// --------------------------------------------------------------- Home side

NodeId DiCoProtocol::l2cOwner(Addr block) const {
  const Bank& bank = banks_[static_cast<std::size_t>(cfg_.homeOf(block))];
  auto owner = const_cast<CoherenceCache&>(bank.l2c).lookup(block);
  return owner.value_or(kInvalidNode);
}

void DiCoProtocol::setL2cOwner(Addr block, NodeId owner) {
  Bank& bank = bankOf(homeOf(block));
  energy_.l2cUpdate += 1;
  // Entries whose block has an in-flight transaction are never displaced
  // (they would strand the transaction's view of the owner).
  if (auto displaced = bank.l2c.update(
          block, owner, [this](Addr a) { return lineBusy(a); })) {
    recallOwnership(displaced->first, displaced->second);
  }
}

void DiCoProtocol::clearL2cOwner(Addr block) {
  Bank& bank = bankOf(homeOf(block));
  bank.l2c.invalidate(block);
  energy_.l2cUpdate += 1;
}

void DiCoProtocol::recallOwnership(Addr block, NodeId owner) {
  // The L2C$ lost the GenPo for this block: make the owner relinquish the
  // ownership and send back the data (if dirty); it stays on as a sharer.
  const NodeId home = homeOf(block);
  Message recall;
  recall.type = kRecall;
  recall.src = home;
  recall.dst = owner;
  recall.addr = block;
  send(recall);

  L1Line* line = tileOf(owner).l1.find(block);
  if (line == nullptr) return;  // already evicted; nothing to recall
  EECC_CHECK(isOwnerState(static_cast<std::uint8_t>(line->state)));
  Message back;
  back.type = kRecallData;
  back.cls = line->dirty ? MsgClass::Data : MsgClass::Control;
  back.src = owner;
  back.dst = home;
  back.origin = home;  // home-side maintenance (L2C$ displacement)
  back.addr = block;
  back.value = line->value;
  send(back);
  NodeSet sharers = line->sharers;
  sharers.insert(owner);
  storeAtL2(home, block, line->value, line->dirty, sharers);
  line->state = L1State::S;
  line->dirty = false;
  line->supplier = kInvalidNode;
  line->sharers.clear();
  energy_.l1DirUpdate += 1;
}

void DiCoProtocol::storeAtL2(NodeId home, Addr block, std::uint64_t value,
                             bool dirty, const NodeSet& sharers) {
  Bank& bank = bankOf(home);
  energy_.l2DataWrite += 1;
  L2Line* line = bank.l2.find(block);
  if (line == nullptr) {
    L2Line* victim = bank.l2.selectVictim(
        block, [this](const L2Line& l) { return lineBusy(l.addr); });
    if (victim == nullptr) victim = bank.l2.selectVictim(block, nullptr);
    EECC_CHECK(victim != nullptr);
    if (victim->valid) evictL2Line(home, *victim);
    line = &bank.l2.install(*victim, block);
    line->dirty = false;
  } else {
    bank.l2.touch(*line);
  }
  line->value = value;
  line->dirty = line->dirty || dirty;
  line->sharers = sharers;
  energy_.l2DirUpdate += 1;
}

void DiCoProtocol::evictL2Line(NodeId home, L2Line& line) {
  stats_.l2Evictions += 1;
  const Addr block = line.addr;
  const NodeSet sharers = line.sharers;
  if (line.dirty) {
    energy_.l2DataRead += 1;
    memWriteback(block, home, line.value);
  }
  bankOf(home).l2.invalidate(line);
  if (sharers.empty()) return;
  // The home acts as both owner (sends the invalidations) and requestor
  // (collects the acknowledgements) — Section IV-A.
  withLine(block, [this, home, block, sharers] {
    Txn& txn = txns_[block];
    txn = Txn{};
    txn.background = true;
    txn.requestor = home;
    txn.bgAcks = sharers.size();
    stats_.dirEvictionInvalidations += 1;
    sharers.forEach([this, home, block](NodeId s) {
      stats_.invalidationsSent += 1;
      Message inv;
      inv.type = kBgInval;
      inv.src = home;
      inv.dst = s;
      inv.addr = block;
      inv.requestor = home;
      send(inv);
    });
  });
}

// ------------------------------------------------------------ Transactions

void DiCoProtocol::startMiss(NodeId tile, Addr block, AccessType type,
                             DoneFn done) {
  Txn& txn = txns_[block];
  txn = Txn{};
  txn.requestor = tile;
  txn.type = type;
  txn.done = std::move(done);
  txn.start = events_.now();

  auto& tl = tileOf(tile);
  L1Line* line = tl.l1.find(block);
  if (type == AccessType::Write && line != nullptr) {
    txn.needsData = false;
    stats_.upgrades += 1;
    if (line->state == L1State::O) {
      // The requestor *is* the ordering point: it invalidates the sharers
      // it tracks itself — no request leaves the tile.
      energy_.l1DirRead += 1;
      NodeSet targets = line->sharers;
      targets.erase(tile);
      txn.acksOutstanding = targets.size();
      txn.ackCountKnown = true;
      txn.becomeOwner = true;
      txn.cls = MissClass::PredOwnerHit;
      targets.forEach([this, tile, block](NodeId s) {
        stats_.invalidationsSent += 1;
        Message inv;
        inv.type = kInval;
        inv.src = tile;
        inv.dst = s;
        inv.addr = block;
        inv.requestor = tile;
        after(cfg_.l1.tagLatency, [this, inv] {
          stageMark(inv.addr, Stage::Service);  // requestor is the orderer
          send(inv);
        });
      });
      line->sharers.clear();
      txn.grantArrived = true;
      maybeCompleteAccess(block);
      return;
    }
  }

  // Supplier prediction: the L1C$, including the pointer embedded in a
  // still-resident shared line (write upgrades use it for free).
  NodeId target = kInvalidNode;
  if (cfg_.enablePrediction) {
    energy_.l1cProbe += 1;
    if (line != nullptr && line->supplier != kInvalidNode) {
      target = line->supplier;
    } else if (auto pred = tl.l1c.lookup(block)) {
      target = *pred;
    }
    if (target == tile) target = kInvalidNode;
  }

  Message req;
  req.addr = block;
  req.requestor = tile;
  req.src = tile;
  if (target != kInvalidNode) {
    txn.predicted = true;
    req.type = kReq;
    req.dst = target;
    req.aux = type == AccessType::Write ? 1 : 0;
  } else {
    req.type = kReqHome;
    req.dst = homeOf(block);
    req.aux = type == AccessType::Write ? 1 : 0;
  }
  txn.links += static_cast<std::uint32_t>(distance(tile, req.dst));
  send(req);
}

void DiCoProtocol::finishClassification(Txn& txn, bool servedByL1Owner,
                                        bool fromMemory, bool servedByL2) {
  if (fromMemory) {
    txn.cls = MissClass::Memory;
  } else if (txn.predicted && !txn.throughHome && servedByL1Owner) {
    txn.cls = MissClass::PredOwnerHit;
  } else if (txn.predicted && txn.throughHome) {
    txn.cls = MissClass::PredMiss;
  } else if (servedByL1Owner) {
    txn.cls = MissClass::UnpredOwner;
  } else if (servedByL2) {
    txn.cls = MissClass::UnpredL2;
  }
}

void DiCoProtocol::ownerServeRead(NodeId owner, L1Line& line,
                                  const Message& msg) {
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  const NodeId requestor = msg.requestor;

  energy_.l1DataRead += 1;
  energy_.l1DirUpdate += 1;
  if (line.state == L1State::M || line.state == L1State::E)
    line.state = L1State::O;
  // Seeded conformance bug (EECC_CHECK_SELFTEST): the owner forgets to
  // register the reader, so its next write never invalidates that copy.
  if (!selftestFault_) line.sharers.insert(requestor);
  finishClassification(txn, /*servedByL1Owner=*/true, false, false);
  txn.links += static_cast<std::uint32_t>(distance(owner, requestor));
  Message data;
  data.type = kData;
  data.cls = MsgClass::Data;
  data.src = owner;
  data.dst = requestor;
  data.origin = requestor;
  data.addr = msg.addr;
  data.value = line.value;
  data.forwarder = owner;  // supplier identity for the L1C$ update
  after(cfg_.l1.tagLatency + cfg_.l1.dataLatency, [this, data] {
    stageMark(data.addr, Stage::Service);  // owner occupancy
    send(data);
  });
}

void DiCoProtocol::ownerServeWrite(NodeId owner, L1Line& line,
                                   const Message& msg) {
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;

  energy_.l1DataRead += 1;
  energy_.l1DirRead += 1;
  // The owner invalidates the sharers it tracks (minus the writer).
  NodeSet targets = line.sharers;
  targets.erase(requestor);
  targets.erase(owner);
  txn.acksOutstanding += targets.size();
  txn.ackCountKnown = true;
  targets.forEach([this, owner, block, requestor](NodeId s) {
    stats_.invalidationsSent += 1;
    Message inv;
    inv.type = kInval;
    inv.src = owner;
    inv.dst = s;
    inv.addr = block;
    inv.requestor = requestor;
    after(cfg_.l1.tagLatency, [this, inv] {
      stageMark(inv.addr, Stage::Service);  // owner occupancy
      send(inv);
    });
  });

  finishClassification(txn, /*servedByL1Owner=*/true, false, false);
  txn.links += static_cast<std::uint32_t>(distance(owner, requestor));
  Message grant;
  grant.type = txn.needsData ? kOwnerGrant : kAckCount;
  grant.cls = txn.needsData ? MsgClass::Data : MsgClass::Control;
  grant.src = owner;
  grant.dst = requestor;
  grant.origin = requestor;
  grant.addr = block;
  grant.value = line.value;
  after(cfg_.l1.tagLatency + cfg_.l1.dataLatency, [this, grant] {
    stageMark(grant.addr, Stage::Service);  // owner occupancy
    send(grant);
  });

  // Change_Owner handshake with the home (old owner -> home; home acks the
  // new owner). State change is immediate; messages are charged.
  Message co;
  co.type = kChangeOwner;
  co.src = owner;
  co.dst = homeOf(block);
  co.origin = requestor;
  co.addr = block;
  send(co);
  Message ack;
  ack.type = kChangeOwnerAck;
  ack.src = homeOf(block);
  ack.dst = requestor;
  ack.origin = requestor;
  ack.addr = block;
  send(ack);
  setL2cOwner(block, requestor);
  stats_.ownershipTransfers += 1;

  tileOf(owner).l1.invalidate(line);  // the old owner's copy dies with
                                      // the write
  txn.becomeOwner = true;
}

void DiCoProtocol::handleRequestAtL1(const Message& msg) {
  stageMark(msg.addr, Stage::Request);  // predicted / forwarded request leg
  const NodeId tile = msg.dst;
  auto& tl = tileOf(tile);
  energy_.l1TagProbe += 1;
  L1Line* line = tl.l1.find(msg.addr);
  const bool isWrite = msg.aux != 0;

  // Fig. 5: a write request names the next owner; remember it.
  if (isWrite && msg.requestor != tile) {
    tl.l1c.update(msg.addr, msg.requestor);
    energy_.l1cUpdate += 1;
  }

  struct Ops {
    DiCoProtocol& p;
    NodeId tile;
    L1Line* line;
    const Message& msg;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t s) { line->state = static_cast<L1State>(s); }
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::Escape2: p.ownerServeRead(tile, *line, msg); break;
        case tbl::Action::Escape3: p.ownerServeWrite(tile, *line, msg); break;
        default: EECC_CHECK_MSG(false, "action not in the snoop vocabulary");
      }
    }
  } ops{*this, tile, line, msg};
  if (line != nullptr &&
      table_.run(static_cast<std::uint8_t>(line->state),
                 isWrite ? tbl::Event::SnoopWrite : tbl::Event::SnoopRead,
                 ops) != tbl::Outcome::Miss) {
    return;
  }
  // Misprediction: forward the request to the home L2.
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  it->second.throughHome = true;
  it->second.links += static_cast<std::uint32_t>(
      distance(tile, homeOf(msg.addr)));
  Message fwd = msg;
  fwd.type = kReqHome;
  fwd.src = tile;
  fwd.dst = homeOf(msg.addr);
  fwd.forwarder = tile;
  send(fwd);
}

void DiCoProtocol::handleRequestAtHome(const Message& msg) {
  const NodeId home = msg.dst;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;
  stageMark(block, Stage::Request);  // request reached the home
  const bool isWrite = msg.aux != 0;
  Bank& bank = bankOf(home);
  energy_.l2TagProbe += 1;
  energy_.l2cProbe += 1;

  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;

  if (auto owner = bank.l2c.lookup(block)) {
    EECC_CHECK_MSG(*owner != requestor,
                   "L2C$ points at the requestor of a miss");
    txn.links += static_cast<std::uint32_t>(distance(home, *owner));
    Message fwd = msg;
    fwd.type = kFwd;
    fwd.src = home;
    fwd.dst = *owner;
    after(cfg_.l2.tagLatency, [this, fwd] { send(fwd); });
    return;
  }

  L2Line* line = bank.l2.find(block);
  if (line != nullptr) {
    energy_.l2DataRead += 1;
    energy_.l2DirRead += 1;
    stats_.l2DataHits += 1;
    if (!isWrite) {
      // The home L2 owns the block and keeps the ownership on reads
      // (DiCo [7]: ownership migrates on writes, memory fills and
      // replacements, not on home-served reads).
      line->sharers.insert(requestor);
      energy_.l2DirUpdate += 1;
      finishClassification(txn, false, false, /*servedByL2=*/true);
      txn.links += static_cast<std::uint32_t>(distance(home, requestor));
      Message data;
      data.type = kData;
      data.cls = MsgClass::Data;
      data.src = home;
      data.dst = requestor;
      data.origin = requestor;
      data.addr = block;
      data.value = line->value;
      data.forwarder = home;
      after(cfg_.l2.tagLatency + cfg_.l2.dataLatency,
            [this, data] { send(data); });
      return;
    }
    // Writes migrate the ownership to the requestor and invalidate the
    // home-tracked sharers.
    NodeSet sharers = line->sharers;
    sharers.erase(requestor);
    txn.acksOutstanding += sharers.size();
    txn.ackCountKnown = true;
    sharers.forEach([this, home, block, requestor](NodeId s) {
      stats_.invalidationsSent += 1;
      Message inv;
      inv.type = kInval;
      inv.src = home;
      inv.dst = s;
      inv.addr = block;
      inv.requestor = requestor;
      after(cfg_.l2.tagLatency, [this, inv] { send(inv); });
    });
    txn.grantSharers.clear();
    txn.becomeOwner = true;
    txn.grantDirty = line->dirty;
    finishClassification(txn, false, false, /*servedByL2=*/true);
    txn.links += static_cast<std::uint32_t>(distance(home, requestor));
    Message grant;
    grant.type = txn.needsData ? kOwnerGrant : kAckCount;
    grant.cls = txn.needsData ? MsgClass::Data : MsgClass::Control;
    grant.src = home;
    grant.dst = requestor;
    grant.origin = requestor;
    grant.addr = block;
    grant.value = line->value;
    after(cfg_.l2.tagLatency + cfg_.l2.dataLatency,
          [this, grant] { send(grant); });
    // Non-inclusive retention: the stale copy stays under the new owner.
    line->dirty = false;
    line->sharers.clear();
    setL2cOwner(block, requestor);
    return;
  }

  // Off-chip. Adaptive ownership placement (see DESIGN.md): the fill
  // makes the requestor the owner only if the L2C$ can track it without
  // displacing a live owner pointer; otherwise the home keeps the
  // ownership of the freshly filled line and the requestor is a plain
  // sharer. Writes always migrate (the writer must own the block).
  txn.grantDirty = false;
  txn.ackCountKnown = true;
  finishClassification(txn, false, /*fromMemory=*/true, false);
  txn.links += static_cast<std::uint32_t>(
      distance(home, cfg_.memControllerOf(block)) +
      distance(cfg_.memControllerOf(block), requestor));
  storeAtL2(home, block, memoryValue(block), /*dirty=*/false, NodeSet{});
  const bool migrate =
      isWrite ||
      !bank.l2c.wouldDisplace(block, [this](Addr a) { return lineBusy(a); });
  if (migrate) {
    txn.becomeOwner = true;
    setL2cOwner(block, requestor);
  } else {
    L2Line* fillLine = bank.l2.find(block);
    EECC_CHECK(fillLine != nullptr);
    fillLine->sharers.insert(requestor);
    energy_.l2DirUpdate += 1;
  }
  memFetch(block, home, requestor, [this, block](std::uint64_t value) {
    auto t = txns_.find(block);
    EECC_CHECK(t != txns_.end());
    t->second.dataArrived = true;
    t->second.grantArrived = true;
    t->second.value = value;
    maybeCompleteAccess(block);
  });
}

void DiCoProtocol::maybeCompleteAccess(Addr block) {
  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  EECC_CHECK(!txn.background);

  const bool dataReady =
      txn.dataArrived || (!txn.needsData && txn.grantArrived);
  if (!dataReady || !txn.ackCountKnown || txn.acksOutstanding > 0 ||
      txn.coreNotified)
    return;
  txn.coreNotified = true;

  const NodeId tile = txn.requestor;
  if (txn.type == AccessType::Read) {
    if (txn.becomeOwner) {
      const L1State st =
          txn.grantSharers.empty() && !txn.grantDirty ? L1State::E
          : txn.grantSharers.empty() && txn.grantDirty ? L1State::M
                                                       : L1State::O;
      installL1(tile, block, st, txn.grantDirty, txn.value, kInvalidNode,
                txn.grantSharers);
      // The inherited sharers learn the new supplier through hints.
      txn.grantSharers.forEach([this, tile, block](NodeId s) {
        stats_.hintMessages += 1;
        Message hint;
        hint.type = kHint;
        hint.src = tile;
        hint.dst = s;
        hint.addr = block;
        hint.requestor = tile;
        send(hint);
      });
    } else {
      installL1(tile, block, L1State::S, false, txn.value, txn.supplier,
                NodeSet{});
    }
    recordRead(tile, txn.value);
  } else {
    installL1(tile, block, L1State::M, true, 0, kInvalidNode, NodeSet{});
    L1Line* line = tileOf(tile).l1.find(block);
    EECC_CHECK(line != nullptr);
    line->value = commitWrite(block);
    if (!txn.becomeOwner) {
      // Write resolved entirely by an owner that was the home? (Handled in
      // home path with becomeOwner=true.) Nothing extra here.
    }
  }
  recordMiss(block, txn.cls, txn.start, txn.links);
  auto done = std::move(txn.done);
  txns_.erase(it);
  releaseLine(block);
  done();
}

void DiCoProtocol::onMessage(const Message& msg) {
  switch (msg.type) {
    case kReq:
      handleRequestAtL1(msg);
      return;
    case kFwd:
      handleRequestAtL1(msg);
      return;
    case kReqHome:
      handleRequestAtHome(msg);
      return;

    case kData: {
      stageMark(msg.addr, Stage::DataReturn);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      Txn& txn = it->second;
      txn.dataArrived = true;
      txn.grantArrived = true;
      txn.value = msg.value;
      txn.ackCountKnown = true;
      txn.supplier = msg.forwarder;
      // Fig. 5: a data message from the supplier refreshes the prediction.
      if (msg.forwarder != kInvalidNode && msg.forwarder != msg.dst) {
        tileOf(msg.dst).l1c.update(msg.addr, msg.forwarder);
        energy_.l1cUpdate += 1;
      }
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kOwnerGrant: {
      stageMark(msg.addr, Stage::DataReturn);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.dataArrived = true;
      it->second.grantArrived = true;
      it->second.value = msg.value;
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kAckCount: {
      stageMark(msg.addr, Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.grantArrived = true;
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kInval: {
      stageMark(msg.addr, Stage::Fanout);
      const NodeId tile = msg.dst;
      auto& tl = tileOf(tile);
      energy_.l1TagProbe += 1;
      if (L1Line* line = tl.l1.find(msg.addr)) {
        struct Ops {
          Tile& tl;
          L1Line& line;
          bool guard(tbl::Guard) const { return true; }
          void setState(std::uint8_t s) {
            line.state = static_cast<L1State>(s);
          }
          void act(tbl::Action a) {
            EECC_CHECK_MSG(a == tbl::Action::Invalidate,
                           "action not in the inval vocabulary");
            tl.l1.invalidate(line);
          }
        } ops{tl, *line};
        table_.run(static_cast<std::uint8_t>(line->state), tbl::Event::Inval,
                   ops);
      }
      // The writer will be the new owner: remember it (Fig. 5).
      if (msg.requestor != tile) {
        tl.l1c.update(msg.addr, msg.requestor);
        energy_.l1cUpdate += 1;
      }
      Message ack;
      ack.type = kInvalAck;
      ack.src = tile;
      ack.dst = msg.requestor;
      ack.origin = msg.requestor;  // the write that forced the invalidation
      ack.addr = msg.addr;
      after(cfg_.l1.tagLatency, [this, ack] { send(ack); });
      return;
    }

    case kInvalAck: {
      stageMark(msg.addr, Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.acksOutstanding -= 1;
      EECC_CHECK(it->second.acksOutstanding >= 0);
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kHint: {
      if (msg.requestor != msg.dst) {
        tileOf(msg.dst).l1c.update(msg.addr, msg.requestor);
        energy_.l1cUpdate += 1;
        if (L1Line* line = tileOf(msg.dst).l1.find(msg.addr))
          if (line->state == L1State::S) line->supplier = msg.requestor;
      }
      return;
    }

    case kBgInval: {
      const NodeId tile = msg.dst;
      energy_.l1TagProbe += 1;
      auto& l1 = tileOf(tile).l1;
      if (L1Line* line = l1.find(msg.addr)) l1.invalidate(*line);
      Message ack;
      ack.type = kBgInvalAck;
      ack.src = tile;
      ack.dst = msg.requestor;
      ack.origin = msg.origin;  // background maintenance: keep the home's tag
      ack.addr = msg.addr;
      after(cfg_.l1.tagLatency, [this, ack] { send(ack); });
      return;
    }

    case kBgInvalAck: {
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end() && it->second.background);
      it->second.bgAcks -= 1;
      if (it->second.bgAcks == 0) {
        const Addr block = msg.addr;
        txns_.erase(it);
        releaseLine(block);
      }
      return;
    }

    // Handshake/notice messages whose state effects were applied
    // atomically at the sender; they only cost traffic and energy.
    case kChangeOwner:
    case kChangeOwnerAck:
    case kRelinquish:
    case kRecall:
    case kRecallData:
      return;

    default:
      EECC_CHECK_MSG(false, "unknown DiCo message");
  }
}

// ------------------------------------------------------------ Introspection

DiCoProtocol::LineView DiCoProtocol::l1Line(NodeId tile, Addr block) const {
  const auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
  LineView v;
  if (const L1Line* line = l1.find(block)) {
    v.valid = true;
    v.value = line->value;
    v.sharerCount = line->sharers.size();
    switch (line->state) {
      case L1State::S: v.state = 'S'; break;
      case L1State::E: v.state = 'E'; break;
      case L1State::M: v.state = 'M'; break;
      case L1State::O: v.state = 'O'; break;
    }
  }
  return v;
}

void DiCoProtocol::forEachL1Copy(
    const std::function<void(const L1CopyView&)>& fn) const {
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          L1CopyView v;
          v.tile = t;
          v.block = line.addr;
          v.state = line.state == L1State::M   ? 'M'
                    : line.state == L1State::E ? 'E'
                    : line.state == L1State::O ? 'O'
                                               : 'S';
          v.value = line.value;
          v.busy = lineBusy(line.addr);
          fn(v);
        });
  }
}

void DiCoProtocol::forEachL2Block(
    const std::function<void(NodeId tile, Addr block)>& fn) const {
  for (NodeId h = 0; h < cfg_.tiles(); ++h)
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) { fn(h, line.addr); });
}

void DiCoProtocol::auditInvariants(const AuditFailFn& fail) const {
  // Quiesced-block invariants: one owner per block; L2C$ points at the
  // actual L1 owner; the owner's sharing code covers every shared copy;
  // every copy holds the committed value; no L2 line coexists with an L1
  // owner.
  std::unordered_map<Addr, NodeId> ownerOf;
  std::unordered_map<Addr, std::vector<NodeId>> sharersOf;
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          if (lineBusy(line.addr)) return;
          if (line.value != committedValue(line.addr))
            fail("L1 copy holds a stale value: tile " + std::to_string(t) +
                 ", " + describeBlock(line.addr));
          if (line.state == L1State::S) {
            sharersOf[line.addr].push_back(t);
          } else {
            if (ownerOf.contains(line.addr))
              fail("two owners for one block: tiles " +
                   std::to_string(ownerOf[line.addr]) + " and " +
                   std::to_string(t) + ", " + describeBlock(line.addr));
            ownerOf[line.addr] = t;
          }
        });
  }
  for (const auto& [block, owner] : ownerOf) {
    if (l2cOwner(block) != owner)
      fail("L2C$ does not point at the L1 owner: " + describeBlock(block) +
           ", owner " + std::to_string(owner) + ", L2C$ says " +
           std::to_string(l2cOwner(block)));
    const L1Line* line =
        tiles_[static_cast<std::size_t>(owner)].l1.find(block);
    if (line == nullptr) continue;
    if (auto it = sharersOf.find(block); it != sharersOf.end())
      for (const NodeId s : it->second)
        if (!line->sharers.contains(s))
          fail("shared copy not covered by the owner's sharing code: tile " +
               std::to_string(s) + ", owner " + std::to_string(owner) +
               ", " + describeBlock(block));
  }
  for (const auto& [block, list] : sharersOf) {
    if (ownerOf.contains(block)) continue;
    // No L1 owner: the home L2 must own the block and cover the sharers.
    const Bank& bank = banks_[static_cast<std::size_t>(cfg_.homeOf(block))];
    const L2Line* line = bank.l2.find(block);
    if (line == nullptr) {
      fail("orphan shared copies (no owner at all): " +
           describeBlock(block));
      continue;
    }
    for (const NodeId s : list)
      if (!line->sharers.contains(s))
        fail("shared copy not covered by the home's sharing code: tile " +
             std::to_string(s) + ", " + describeBlock(block));
  }
  for (NodeId h = 0; h < cfg_.tiles(); ++h) {
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) {
          if (lineBusy(line.addr)) return;
          // Retained copies under an L1 owner may legitimately be stale.
          if (l2cOwner(line.addr) != kInvalidNode) return;
          if (line.value != committedValue(line.addr))
            fail("home-owned L2 line holds a stale value: " +
                 describeBlock(line.addr));
        });
  }
}

}  // namespace eecc
