#include "protocols/dico_providers.h"



namespace eecc {

namespace {
enum ProvMsg : std::uint16_t {
  kReq = Protocol::kFirstProtocolMsg,  // requestor -> predicted supplier
  kReqHome,        // requestor/forwarder -> home
  kFwd,            // home -> owner L1 (precise)
  kFwdProvider,    // owner/home -> provider in the requestor's area
  kData,           // supplier -> requestor (plain sharer copy)
  kProviderGrant,  // owner -> remote requestor (becomes its area's provider)
  kOwnerGrant,     // ownership + data -> requestor
  kAckCount,       // control grant for upgrades
  kInval,          // supplier -> sharer
  kInvalAck,       // sharer -> writer (or home on L2 eviction)
  kInvalProvider,  // owner/home -> provider
  kInvalProviderAck,  // provider -> writer/home (aux = its sharer count)
  kChangeOwner,
  kChangeOwnerAck,
  kChangeProvider,
  kChangeProviderAck,
  kNoProvider,
  kHint,
  kRelinquish,
  kRecall,
  kRecallData
};

// The MOSI+E+P stable-state automaton as table data (DESIGN.md §15).
// State ids mirror DiCoProvidersProtocol::L1State declaration order. The
// per-area machinery (ProPo repair, provider creation, area-scoped
// invalidation) stays behind escapes whose meaning is scoped to the
// dispatching event: Replace {0: supplier hint, 1: evict provider,
// 2: evict owner}; Snoop* {0: owner read, 1: provider read, 2: owner
// write}.
constexpr std::uint8_t kS = 0, kE = 1, kM = 2, kO = 3, kP = 4;
constexpr tbl::Transition kProvidersTable[] = {
    // Core reads hit on any valid copy.
    {kS, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kE, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kM, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kO, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kP, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    // Core writes: E upgrades silently; an owner with no providers and no
    // other in-area sharers upgrades in place; S and P (which by
    // definition track remote copies) start an upgrade transaction.
    {kS, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    {kM, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    {kO, tbl::Event::LocalWrite, tbl::Guard::SoleCopy, tbl::Outcome::Hit, kM,
     {tbl::Action::ChargeL1DirRead, tbl::Action::CommitWrite,
      tbl::Action::ChargeL1Write, tbl::Action::Touch}},
    {kO, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {tbl::Action::ChargeL1DirRead}},
    {kP, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    // Replacement: sharers evict silently retaining the supplier hint;
    // a provider hands its area's sharers to an heir or dissolves; owner
    // states hand the ownership over (Section IV-A1).
    {kS, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape0, tbl::Action::Invalidate}},
    {kE, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2, tbl::Action::Invalidate}},
    {kM, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2, tbl::Action::Invalidate}},
    {kO, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2, tbl::Action::Invalidate}},
    {kP, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1, tbl::Action::Invalidate}},
    // Supplier-directed invalidation (ack handled at the dispatch site).
    {kS, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kM, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kO, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kP, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    // Requests predicted (or forwarded) to this L1: owners serve both
    // kinds; a provider serves reads from its own area only; anything
    // else detours (Outcome::Miss at the dispatch site).
    {kS, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape0}},
    {kM, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape0}},
    {kO, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape0}},
    {kP, tbl::Event::SnoopRead, tbl::Guard::SameArea, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape1}},
    {kP, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kS, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2}},
    {kM, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2}},
    {kO, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2}},
    {kP, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
};
}  // namespace

tbl::ProtocolTable DiCoProvidersProtocol::makeStableTable() {
  return tbl::ProtocolTable("providers", kProvidersTable, /*numStates=*/5,
                            /*sharedState=*/kS, /*modifiedState=*/kM);
}

DiCoProvidersProtocol::DiCoProvidersProtocol(EventQueue& events, Network& net,
                                             const CmpConfig& cfg)
    : Protocol(events, net, cfg), table_(makeStableTable()) {
  EECC_CHECK_MSG(cfg_.numAreas <= kMaxAreas,
                 "simulation supports at most kMaxAreas areas");
  tiles_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  banks_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_.emplace_back(cfg_);
    banks_.emplace_back(cfg_);
  }
}

// ---------------------------------------------------------------- L1 side

bool DiCoProvidersProtocol::tryHit(NodeId tile, Addr block, AccessType type) {
  auto& tl = tileOf(tile);
  energy_.l1TagProbe += 1;
  L1Line* line = tl.l1.find(block);
  if (line == nullptr) return false;
  struct Ops {
    DiCoProvidersProtocol& p;
    Tile& tl;
    L1Line& line;
    NodeId tile;
    Addr block;
    bool guard(tbl::Guard) const {
      // SoleCopy: no provider in any remote area and no other sharer in
      // this one — the owner's coherence info proves exclusivity.
      for (const NodeId pr : line.providers)
        if (pr != kInvalidNode) return false;
      NodeSet others = line.areaSharers;
      others.erase(tile);
      return others.empty();
    }
    void setState(std::uint8_t s) { line.state = static_cast<L1State>(s); }
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
        case tbl::Action::ChargeL1Write: p.energy_.l1DataWrite += 1; break;
        case tbl::Action::ChargeL1DirRead: p.energy_.l1DirRead += 1; break;
        case tbl::Action::Touch: tl.l1.touch(line); break;
        case tbl::Action::RecordRead: p.recordRead(tile, line.value); break;
        case tbl::Action::CommitWrite:
          line.dirty = true;
          line.value = p.commitWrite(block);
          break;
        default: EECC_CHECK_MSG(false, "action not in the hit vocabulary");
      }
    }
  } ops{*this, tl, *line, tile, block};
  return table_.run(static_cast<std::uint8_t>(line->state),
                    type == AccessType::Read ? tbl::Event::LocalRead
                                             : tbl::Event::LocalWrite,
                    ops) == tbl::Outcome::Hit;
}

void DiCoProvidersProtocol::installL1(NodeId tile, Addr block, L1State state,
                                      bool dirty, std::uint64_t value,
                                      NodeId supplier, const NodeSet& sharers,
                                      const ProPoArray& providers) {
  auto& l1 = tileOf(tile).l1;
  L1Line* line = l1.find(block);
  if (line == nullptr) {
    L1Line* victim = l1.selectVictim(
        block, [this](const L1Line& l) { return lineBusy(l.addr); });
    if (victim == nullptr) victim = l1.selectVictim(block, nullptr);
    EECC_CHECK(victim != nullptr);
    if (victim->valid) evictL1Line(tile, *victim);
    line = &l1.install(*victim, block);
    energy_.l1TagProbe += 1;
  } else {
    l1.touch(*line);
  }
  line->state = state;
  line->dirty = dirty;
  line->value = value;
  line->supplier = supplier;
  line->areaSharers = sharers;
  line->providers = providers;
  energy_.l1DataWrite += 1;
  if (state != L1State::S) energy_.l1DirUpdate += 1;
}

NodeId DiCoProvidersProtocol::findLiveSharer(Addr block,
                                             const NodeSet& candidates,
                                             NodeId except,
                                             NodeId chargeFrom) {
  NodeId heir = kInvalidNode;
  candidates.forEach([&](NodeId s) {
    if (heir != kInvalidNode || s == except) return;
    if (tileOf(s).l1.find(block) != nullptr) {
      heir = s;
    } else {
      // Stale sharer refuses the transfer (Section IV-A1): wasted hop.
      Message probe;
      probe.type = kChangeProvider;
      probe.src = chargeFrom;
      probe.dst = s;
      probe.addr = block;
      send(probe);
    }
  });
  return heir;
}

void DiCoProvidersProtocol::evictL1Line(NodeId tile, L1Line& line) {
  struct Ops {
    DiCoProvidersProtocol& p;
    NodeId tile;
    L1Line& line;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t) {}
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::Escape0: p.retainSupplierHint(tile, line); break;
        case tbl::Action::Escape1: p.evictProviderLine(tile, line); break;
        case tbl::Action::Escape2: p.evictOwnerLine(tile, line); break;
        case tbl::Action::Invalidate:
          p.tileOf(tile).l1.invalidate(line);
          break;
        default:
          EECC_CHECK_MSG(false, "action not in the replace vocabulary");
      }
    }
  } ops{*this, tile, line};
  table_.run(static_cast<std::uint8_t>(line.state), tbl::Event::Replace, ops);
}

void DiCoProvidersProtocol::retainSupplierHint(NodeId tile,
                                               const L1Line& line) {
  if (line.supplier != kInvalidNode) {
    tileOf(tile).l1c.update(line.addr, line.supplier);
    energy_.l1cUpdate += 1;
  }
}

void DiCoProvidersProtocol::evictProviderLine(NodeId tile, L1Line& line) {
  const Addr block = line.addr;
  const AreaId area = areaOf(tile);
  energy_.l1DirRead += 1;
  NodeSet others = line.areaSharers;
  others.erase(tile);
  if (others.empty()) {
    // A provider tracking no sharers evicts silently; the owner's ProPo
    // goes stale and is repaired through the forwarder identity of the
    // next bounced request (same mechanism DiCo-Arin formalizes). This
    // avoids a No_Provider storm under heavy L1 churn.
    if (line.supplier != kInvalidNode) {
      tileOf(tile).l1c.update(block, line.supplier);
      energy_.l1cUpdate += 1;
    }
    return;
  }
  const NodeId heir = findLiveSharer(block, line.areaSharers, tile, tile);
  if (heir != kInvalidNode) {
    // Providership + sharing code to a sharer; it tells the owner
    // (Change_Provider, acknowledged) — Table II.
    stats_.providershipTransfers += 1;
    Message xfer;
    xfer.type = kChangeProvider;
    xfer.src = tile;
    xfer.dst = heir;
    xfer.addr = block;
    send(xfer);
    L1Line* heirLine = tileOf(heir).l1.find(block);
    EECC_CHECK(heirLine != nullptr);
    heirLine->state = L1State::P;
    heirLine->dirty = false;
    heirLine->areaSharers = line.areaSharers;
    heirLine->areaSharers.erase(heir);
    energy_.l1DirUpdate += 1;
    updateProviderAtOwner(block, area, heir, heir);
  } else {
    updateProviderAtOwner(block, area, kInvalidNode, tile);
  }
}

void DiCoProvidersProtocol::evictOwnerLine(NodeId tile, L1Line& line) {
  const Addr block = line.addr;
  energy_.l1DirRead += 1;
  NodeSet locals = line.areaSharers;
  locals.erase(tile);
  const NodeId heir = findLiveSharer(block, locals, tile, tile);
  if (heir != kInvalidNode) {
    // Ownership + sharing code + ProPos to a local sharer (Table II).
    stats_.ownershipTransfers += 1;
    Message xfer;
    xfer.type = kChangeOwner;
    xfer.src = tile;
    xfer.dst = heir;
    xfer.addr = block;
    send(xfer);
    Message co;
    co.type = kChangeOwner;
    co.src = heir;
    co.dst = homeOf(block);
    co.origin = tile;  // maintenance of the evictor's footprint
    co.addr = block;
    send(co);
    Message ack;
    ack.type = kChangeOwnerAck;
    ack.src = homeOf(block);
    ack.dst = heir;
    ack.origin = tile;
    ack.addr = block;
    send(ack);
    NodeSet rest = locals;
    rest.erase(heir);
    rest.forEach([&](NodeId s) {
      stats_.hintMessages += 1;
      Message hint;
      hint.type = kHint;
      hint.src = tile;
      hint.dst = s;
      hint.addr = block;
      hint.requestor = heir;
      hint.origin = tile;
      send(hint);
    });
    L1Line* heirLine = tileOf(heir).l1.find(block);
    EECC_CHECK(heirLine != nullptr);
    heirLine->state = L1State::O;
    heirLine->dirty = line.dirty;
    heirLine->areaSharers = rest;
    heirLine->providers = line.providers;
    energy_.l1DirUpdate += 1;
    setL2cOwner(block, heir);
    return;
  }
  // No local sharers: the ownership goes to the home (Table II), keeping
  // the remote providers alive at the L2 entry.
  bool anyProvider = false;
  for (const NodeId p : line.providers) anyProvider |= p != kInvalidNode;
  Bank& bank = bankOf(homeOf(block));
  bank.l2c.invalidate(block);
  energy_.l2cUpdate += 1;
  if (anyProvider || line.dirty) {
    if (line.dirty) stats_.writebacks += 1;
    Message rel;
    rel.type = kRelinquish;
    rel.cls = line.dirty ? MsgClass::Data : MsgClass::Control;
    rel.src = tile;
    rel.dst = homeOf(block);
    rel.addr = block;
    rel.value = line.value;
    send(rel);
    storeAtL2(homeOf(block), block, line.value, line.dirty, line.providers);
  } else {
    Message note;
    note.type = kRelinquish;
    note.src = tile;
    note.dst = homeOf(block);
    note.addr = block;
    send(note);
    // Clean, no providers: the home's retained copy (if any) becomes the
    // owner again; otherwise memory stays current and the block drops.
    if (L2Line* l2line = bank.l2.find(block)) {
      l2line->providers = emptyProPos();
      energy_.l2DirUpdate += 1;
    }
  }
}

// --------------------------------------------------- Ownership bookkeeping

DiCoProvidersProtocol::OwnerKind DiCoProvidersProtocol::ownerOf(Addr block,
                                                                NodeId* node) {
  Bank& bank = bankOf(homeOf(block));
  if (auto owner = bank.l2c.lookup(block)) {
    *node = *owner;
    return OwnerKind::L1;
  }
  if (bank.l2.find(block) != nullptr) {
    *node = homeOf(block);
    return OwnerKind::HomeL2;
  }
  *node = kInvalidNode;
  return OwnerKind::None;
}

NodeId DiCoProvidersProtocol::l2cOwner(Addr block) const {
  const Bank& bank = banks_[static_cast<std::size_t>(cfg_.homeOf(block))];
  return const_cast<CoherenceCache&>(bank.l2c).lookup(block)
      .value_or(kInvalidNode);
}

NodeId DiCoProvidersProtocol::providerOf(Addr block, AreaId area) const {
  auto* self = const_cast<DiCoProvidersProtocol*>(this);
  NodeId node = kInvalidNode;
  const OwnerKind kind = self->ownerOf(block, &node);
  if (kind == OwnerKind::L1) {
    const L1Line* line = self->tileOf(node).l1.find(block);
    if (line == nullptr) return kInvalidNode;
    return line->providers[static_cast<std::size_t>(area)];
  }
  if (kind == OwnerKind::HomeL2) {
    const L2Line* line = self->bankOf(node).l2.find(block);
    if (line == nullptr) return kInvalidNode;
    return line->providers[static_cast<std::size_t>(area)];
  }
  return kInvalidNode;
}

void DiCoProvidersProtocol::setL2cOwner(Addr block, NodeId owner) {
  Bank& bank = bankOf(homeOf(block));
  energy_.l2cUpdate += 1;
  if (auto displaced = bank.l2c.update(
          block, owner, [this](Addr a) { return lineBusy(a); })) {
    recallOwnership(displaced->first, displaced->second);
  }
}

void DiCoProvidersProtocol::recallOwnership(Addr block, NodeId owner) {
  // L2C$ entry eviction: the owner relinquishes the ownership and sends
  // back the providers and data; it becomes the provider for its area
  // (Section IV-A1).
  const NodeId home = homeOf(block);
  Message recall;
  recall.type = kRecall;
  recall.src = home;
  recall.dst = owner;
  recall.addr = block;
  send(recall);

  L1Line* line = tileOf(owner).l1.find(block);
  if (line == nullptr) return;
  EECC_CHECK(line->isOwner());
  Message back;
  back.type = kRecallData;
  back.cls = line->dirty ? MsgClass::Data : MsgClass::Control;
  back.src = owner;
  back.dst = home;
  back.origin = home;  // home-side maintenance (L2C$ displacement)
  back.addr = block;
  back.value = line->value;
  send(back);

  ProPoArray provs = line->providers;
  provs[static_cast<std::size_t>(areaOf(owner))] = owner;
  storeAtL2(home, block, line->value, line->dirty, provs);
  line->state = L1State::P;
  line->dirty = false;
  line->providers = emptyProPos();
  energy_.l1DirUpdate += 1;
  stats_.ownershipTransfers += 1;
}

void DiCoProvidersProtocol::storeAtL2(NodeId home, Addr block,
                                      std::uint64_t value, bool dirty,
                                      const ProPoArray& providers) {
  Bank& bank = bankOf(home);
  energy_.l2DataWrite += 1;
  L2Line* line = bank.l2.find(block);
  if (line == nullptr) {
    L2Line* victim = bank.l2.selectVictim(
        block, [this](const L2Line& l) { return lineBusy(l.addr); });
    if (victim == nullptr) victim = bank.l2.selectVictim(block, nullptr);
    EECC_CHECK(victim != nullptr);
    if (victim->valid) evictL2Line(home, *victim);
    line = &bank.l2.install(*victim, block);
    line->dirty = false;
  } else {
    bank.l2.touch(*line);
  }
  line->value = value;
  line->dirty = line->dirty || dirty;
  line->providers = providers;
  energy_.l2DirUpdate += 1;
}

void DiCoProvidersProtocol::evictL2Line(NodeId home, L2Line& line) {
  stats_.l2Evictions += 1;
  const Addr block = line.addr;
  if (bankOf(home).l2c.lookup(block).has_value()) {
    // Retained (possibly stale) copy under an L1 owner: drop silently —
    // the owner holds the authoritative data and coherence info.
    bankOf(home).l2.invalidate(line);
    return;
  }
  const ProPoArray providers = line.providers;
  if (line.dirty) {
    energy_.l2DataRead += 1;
    memWriteback(block, home, line.value);
  }
  bankOf(home).l2.invalidate(line);
  bool anyProvider = false;
  for (const NodeId p : providers) anyProvider |= p != kInvalidNode;
  if (!anyProvider) return;
  // The home acts as owner and requestor: invalidate the providers, which
  // invalidate the sharers of their areas; all acks come back here.
  withLine(block, [this, home, block, providers] {
    Txn& txn = txns_[block];
    txn = Txn{};
    txn.background = true;
    txn.requestor = home;
    stats_.dirEvictionInvalidations += 1;
    // Two-counter scheme as in foreground writes: provider acks carry the
    // sharer counts, and sharer acks may transiently outrun them.
    for (std::size_t a = 0; a < kMaxAreas; ++a) {
      const NodeId p = providers[a];
      if (p == kInvalidNode) continue;
      txn.providerAcks += 1;
      stats_.invalidationsSent += 1;
      Message inv;
      inv.type = kInvalProvider;
      inv.src = home;
      inv.dst = p;
      inv.addr = block;
      inv.requestor = home;
      send(inv);
    }
    if (txn.providerAcks == 0) {
      txns_.erase(block);
      releaseLine(block);
    }
  });
}

void DiCoProvidersProtocol::updateProviderAtOwner(Addr block, AreaId area,
                                                  NodeId provider,
                                                  NodeId notifier) {
  NodeId node = kInvalidNode;
  const OwnerKind kind = ownerOf(block, &node);
  if (kind == OwnerKind::None) return;
  // Change_Provider / No_Provider notification + acknowledgement.
  Message note;
  note.type = provider == kInvalidNode ? kNoProvider : kChangeProvider;
  note.src = notifier;
  note.dst = node;
  note.addr = block;
  send(note);
  Message ack;
  ack.type = kChangeProviderAck;
  ack.src = node;
  ack.dst = notifier;
  ack.origin = notifier;  // reply to the notifier's maintenance action
  ack.addr = block;
  send(ack);

  if (kind == OwnerKind::L1) {
    if (L1Line* line = tileOf(node).l1.find(block)) {
      line->providers[static_cast<std::size_t>(area)] = provider;
      energy_.l1DirUpdate += 1;
    }
  } else {
    if (L2Line* line = bankOf(node).l2.find(block)) {
      line->providers[static_cast<std::size_t>(area)] = provider;
      energy_.l2DirUpdate += 1;
    }
  }
}

// ------------------------------------------------------------ Transactions

void DiCoProvidersProtocol::startMiss(NodeId tile, Addr block,
                                      AccessType type, DoneFn done) {
  Txn& txn = txns_[block];
  txn = Txn{};
  txn.requestor = tile;
  txn.type = type;
  txn.done = std::move(done);
  txn.start = events_.now();

  auto& tl = tileOf(tile);
  L1Line* line = tl.l1.find(block);

  if (type == AccessType::Write && line != nullptr) {
    txn.needsData = false;
    stats_.upgrades += 1;
    if (line->isOwner()) {
      // The requestor is the ordering point: invalidate its area sharers
      // and the providers locally.
      energy_.l1DirRead += 1;
      NodeSet targets = line->areaSharers;
      targets.erase(tile);
      txn.sharerAcks += targets.size();
      targets.forEach([this, tile, block](NodeId s) {
        stats_.invalidationsSent += 1;
        Message inv;
        inv.type = kInval;
        inv.src = tile;
        inv.dst = s;
        inv.addr = block;
        inv.requestor = tile;
        after(cfg_.l1.tagLatency, [this, inv] {
          stageMark(inv.addr, Stage::Service);  // requestor is the orderer
          send(inv);
        });
      });
      invalidateProviders(line->providers, block, tile, tile, txn);
      line->areaSharers.clear();
      line->providers = emptyProPos();
      txn.ackCountKnown = true;
      txn.becomeOwner = true;
      txn.grantArrived = true;
      txn.cls = MissClass::PredOwnerHit;
      maybeCompleteAccess(block);
      return;
    }
    if (line->state == L1State::P) {
      // "The requestor of a write request is a provider": it must
      // invalidate its own area's sharers, but only after receiving the
      // ownership (Section IV-A).
      txn.selfSharers = line->areaSharers;
      txn.selfSharers.erase(tile);
    }
  }

  NodeId target = kInvalidNode;
  if (cfg_.enablePrediction) {
    energy_.l1cProbe += 1;
    if (line != nullptr && line->supplier != kInvalidNode) {
      target = line->supplier;
    } else if (auto pred = tl.l1c.lookup(block)) {
      target = *pred;
    }
    if (target == tile) target = kInvalidNode;
  }

  Message req;
  req.addr = block;
  req.requestor = tile;
  req.src = tile;
  req.aux = type == AccessType::Write ? 1 : 0;
  if (target != kInvalidNode) {
    txn.predicted = true;
    req.type = kReq;
    req.dst = target;
  } else {
    req.type = kReqHome;
    req.dst = homeOf(block);
  }
  txn.links += static_cast<std::uint32_t>(distance(tile, req.dst));
  send(req);
}

void DiCoProvidersProtocol::invalidateProviders(const ProPoArray& providers,
                                                Addr block, NodeId from,
                                                NodeId ackTo, Txn& txn) {
  for (std::size_t a = 0; a < kMaxAreas; ++a) {
    const NodeId p = providers[a];
    if (p == kInvalidNode || p == ackTo) continue;
    txn.providerAcks += 1;
    stats_.invalidationsSent += 1;
    Message inv;
    inv.type = kInvalProvider;
    inv.src = from;
    inv.dst = p;
    inv.addr = block;
    inv.requestor = ackTo;
    send(inv);
  }
}

void DiCoProvidersProtocol::ownerServeRead(NodeId tile, L1Line& line,
                                           const Message& msg) {
  const NodeId requestor = msg.requestor;
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;

  // Stale-ProPo repair: a request forwarded by the cache the owner
  // believes to be a provider proves that cache no longer provides.
  if (msg.forwarder != kInvalidNode) {
    const auto fa = static_cast<std::size_t>(areaOf(msg.forwarder));
    if (line.providers[fa] == msg.forwarder) {
      line.providers[fa] = kInvalidNode;
      energy_.l1DirUpdate += 1;
    }
  }
  if (sameArea(requestor, tile)) {
    supplierServeRead(tile, line, msg);
    return;
  }
  const AreaId aR = areaOf(requestor);
  const NodeId provider = line.providers[static_cast<std::size_t>(aR)];
  if (provider != kInvalidNode && provider != requestor) {
    // Forward to the provider of the requestor's area (Table I).
    if (txn.cls == MissClass::UnpredL2) {
      if (txn.predicted && !txn.throughHome)
        txn.cls = MissClass::PredOwnerHit;
      else if (txn.predicted)
        txn.cls = MissClass::PredMiss;
      else
        txn.cls = MissClass::UnpredOwner;
    }
    txn.links += static_cast<std::uint32_t>(distance(tile, provider));
    Message fwd = msg;
    fwd.type = kFwdProvider;
    fwd.src = tile;
    fwd.dst = provider;
    after(cfg_.l1.tagLatency, [this, fwd] {
      stageMark(fwd.addr, Stage::Service);  // owner occupancy
      send(fwd);
    });
    return;
  }
  // No provider in the requestor's area: the requestor becomes one.
  energy_.l1DataRead += 1;
  energy_.l1DirUpdate += 1;
  line.providers[static_cast<std::size_t>(aR)] = requestor;
  if (line.state == L1State::E || line.state == L1State::M)
    line.state = L1State::O;
  if (txn.cls == MissClass::UnpredL2) {
    if (txn.predicted && !txn.throughHome)
      txn.cls = MissClass::PredOwnerHit;
    else if (txn.predicted)
      txn.cls = MissClass::PredMiss;
    else
      txn.cls = MissClass::UnpredOwner;
  }
  txn.becomeProvider = true;
  txn.links += static_cast<std::uint32_t>(distance(tile, requestor));
  Message grant;
  grant.type = kProviderGrant;
  grant.cls = MsgClass::Data;
  grant.src = tile;
  grant.dst = requestor;
  grant.origin = requestor;
  grant.addr = msg.addr;
  grant.value = line.value;
  grant.forwarder = tile;
  after(cfg_.l1.tagLatency + cfg_.l1.dataLatency, [this, grant] {
    stageMark(grant.addr, Stage::Service);  // owner occupancy
    send(grant);
  });
}

void DiCoProvidersProtocol::supplierServeRead(NodeId node, L1Line& line,
                                              const Message& msg) {
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  const NodeId requestor = msg.requestor;

  energy_.l1DataRead += 1;
  energy_.l1DirUpdate += 1;
  line.areaSharers.insert(requestor);
  if (line.state == L1State::P && sameArea(node, requestor))
    stats_.providerResolvedMisses += 1;
  // An exclusive owner now tracks coherence info: E/M collapse into O.
  if (line.state == L1State::E || line.state == L1State::M)
    line.state = L1State::O;
  if (txn.cls == MissClass::UnpredL2) {  // not yet classified
    if (txn.predicted && !txn.throughHome)
      txn.cls = line.isOwner() ? MissClass::PredOwnerHit
                               : MissClass::PredProviderHit;
    else if (txn.predicted)
      txn.cls = MissClass::PredMiss;
    else
      txn.cls = MissClass::UnpredOwner;
  }
  txn.links += static_cast<std::uint32_t>(distance(node, requestor));
  Message data;
  data.type = kData;
  data.cls = MsgClass::Data;
  data.src = node;
  data.dst = requestor;
  data.origin = requestor;
  data.addr = msg.addr;
  data.value = line.value;
  data.forwarder = node;
  after(cfg_.l1.tagLatency + cfg_.l1.dataLatency, [this, data] {
    stageMark(data.addr, Stage::Service);  // supplier occupancy
    send(data);
  });
}

void DiCoProvidersProtocol::ownerServeWrite(NodeId node, L1Line& line,
                                            const Message& msg) {
  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;

  energy_.l1DataRead += 1;
  energy_.l1DirRead += 1;
  // The owner invalidates its area's sharers and the providers; providers
  // invalidate their own areas. All acks go to the requestor, tracked by
  // the two MSHR counters (Section IV-A).
  NodeSet targets = line.areaSharers;
  targets.erase(requestor);
  targets.erase(node);
  txn.sharerAcks += targets.size();
  targets.forEach([this, node, block, requestor](NodeId s) {
    stats_.invalidationsSent += 1;
    Message inv;
    inv.type = kInval;
    inv.src = node;
    inv.dst = s;
    inv.addr = block;
    inv.requestor = requestor;
    after(cfg_.l1.tagLatency, [this, inv] {
      stageMark(inv.addr, Stage::Service);  // owner occupancy
      send(inv);
    });
  });
  invalidateProviders(line.providers, block, node, requestor, txn);
  txn.ackCountKnown = true;
  txn.becomeOwner = true;

  if (txn.cls == MissClass::UnpredL2) {
    if (txn.predicted && !txn.throughHome) txn.cls = MissClass::PredOwnerHit;
    else if (txn.predicted) txn.cls = MissClass::PredMiss;
    else txn.cls = MissClass::UnpredOwner;
  }
  txn.links += static_cast<std::uint32_t>(distance(node, requestor));
  Message grant;
  grant.type = txn.needsData ? kOwnerGrant : kAckCount;
  grant.cls = txn.needsData ? MsgClass::Data : MsgClass::Control;
  grant.src = node;
  grant.dst = requestor;
  grant.origin = requestor;
  grant.addr = block;
  grant.value = line.value;
  after(cfg_.l1.tagLatency + cfg_.l1.dataLatency, [this, grant] {
    stageMark(grant.addr, Stage::Service);  // owner occupancy
    send(grant);
  });

  Message co;
  co.type = kChangeOwner;
  co.src = node;
  co.dst = homeOf(block);
  co.origin = requestor;
  co.addr = block;
  send(co);
  Message ack;
  ack.type = kChangeOwnerAck;
  ack.src = homeOf(block);
  ack.dst = requestor;
  ack.origin = requestor;
  ack.addr = block;
  send(ack);
  setL2cOwner(block, requestor);
  stats_.ownershipTransfers += 1;
  tileOf(node).l1.invalidate(line);
}

void DiCoProvidersProtocol::handleRequestAtL1(const Message& msg) {
  stageMark(msg.addr, Stage::Request);  // predicted / forwarded request leg
  const NodeId tile = msg.dst;
  auto& tl = tileOf(tile);
  energy_.l1TagProbe += 1;
  L1Line* line = tl.l1.find(msg.addr);
  const bool isWrite = msg.aux != 0;
  const NodeId requestor = msg.requestor;

  auto it = txns_.find(msg.addr);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;

  // Fig. 5: a write request names the next owner; remember it.
  if (isWrite && requestor != tile) {
    tl.l1c.update(msg.addr, requestor);
    energy_.l1cUpdate += 1;
  }

  struct Ops {
    DiCoProvidersProtocol& p;
    NodeId tile;
    L1Line* line;
    const Message& msg;
    bool guard(tbl::Guard) const {
      return p.sameArea(msg.requestor, tile);  // SameArea: provider scope
    }
    void setState(std::uint8_t s) { line->state = static_cast<L1State>(s); }
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::Escape0: p.ownerServeRead(tile, *line, msg); break;
        case tbl::Action::Escape1:
          p.supplierServeRead(tile, *line, msg);
          break;
        case tbl::Action::Escape2: p.ownerServeWrite(tile, *line, msg); break;
        default: EECC_CHECK_MSG(false, "action not in the snoop vocabulary");
      }
    }
  } ops{*this, tile, line, msg};
  if (line != nullptr &&
      table_.run(static_cast<std::uint8_t>(line->state),
                 isWrite ? tbl::Event::SnoopWrite : tbl::Event::SnoopRead,
                 ops) != tbl::Outcome::Miss) {
    return;
  }
  // Cannot act: forward to the home (misprediction or remote provider).
  // The forwarder identity is a staleness signal (it triggers ProPo
  // repair), so it is only set when this cache holds no supplier copy —
  // a live provider forwarding a remote-area request is NOT stale.
  txn.throughHome = true;
  txn.links += static_cast<std::uint32_t>(distance(tile, homeOf(msg.addr)));
  Message fwd = msg;
  fwd.type = kReqHome;
  fwd.src = tile;
  fwd.dst = homeOf(msg.addr);
  fwd.forwarder =
      (line == nullptr || !line->isSupplier()) ? tile : kInvalidNode;
  send(fwd);
}

void DiCoProvidersProtocol::handleRequestAtHome(const Message& msg) {
  const NodeId home = msg.dst;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;
  stageMark(block, Stage::Request);  // request reached the home
  const bool isWrite = msg.aux != 0;
  Bank& bank = bankOf(home);
  energy_.l2TagProbe += 1;
  energy_.l2cProbe += 1;

  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;

  if (auto owner = bank.l2c.lookup(block)) {
    EECC_CHECK_MSG(*owner != requestor,
                   "L2C$ points at the requestor of a miss");
    txn.links += static_cast<std::uint32_t>(distance(home, *owner));
    Message fwd = msg;
    fwd.type = kFwd;
    fwd.src = home;
    fwd.dst = *owner;
    after(cfg_.l2.tagLatency, [this, fwd] {
      stageMark(fwd.addr, Stage::Service);  // home occupancy
      send(fwd);
    });
    return;
  }

  L2Line* line = bank.l2.find(block);
  if (line != nullptr) {
    energy_.l2DirRead += 1;
    const AreaId aR = areaOf(requestor);
    if (msg.forwarder != kInvalidNode) {
      const auto fa = static_cast<std::size_t>(areaOf(msg.forwarder));
      if (line->providers[fa] == msg.forwarder) {
        line->providers[fa] = kInvalidNode;
        energy_.l2DirUpdate += 1;
      }
    }
    if (!isWrite) {
      const NodeId provider = line->providers[static_cast<std::size_t>(aR)];
      if (provider != kInvalidNode && provider != requestor) {
        // Table I: L2 owner, provider exists -> forward to provider.
        if (txn.cls == MissClass::UnpredL2 && txn.predicted)
          txn.cls = MissClass::PredMiss;
        else if (txn.cls == MissClass::UnpredL2)
          txn.cls = MissClass::UnpredOwner;
        txn.links += static_cast<std::uint32_t>(distance(home, provider));
        Message fwd = msg;
        fwd.type = kFwdProvider;
        fwd.src = home;
        fwd.dst = provider;
        after(cfg_.l2.tagLatency, [this, fwd] {
          stageMark(fwd.addr, Stage::Service);  // home occupancy
          send(fwd);
        });
        return;
      }
    }
    energy_.l2DataRead += 1;
    stats_.l2DataHits += 1;
    if (!isWrite &&
        bank.l2c.wouldDisplace(block, [this](Addr a) { return lineBusy(a); })) {
      // Adaptive ownership placement: no L2C$ room to track a new L1
      // owner — keep the ownership at the home and make the requestor
      // its area's provider instead (it is tracked through the ProPo).
      line->providers[static_cast<std::size_t>(areaOf(requestor))] =
          requestor;
      energy_.l2DirUpdate += 1;
      if (txn.cls == MissClass::UnpredL2 && txn.predicted)
        txn.cls = MissClass::PredMiss;
      txn.links += static_cast<std::uint32_t>(distance(home, requestor));
      Message grant;
      grant.type = kProviderGrant;
      grant.cls = MsgClass::Data;
      grant.src = home;
      grant.dst = requestor;
      grant.origin = requestor;
      grant.addr = block;
      grant.value = line->value;
      after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, grant] {
        stageMark(grant.addr, Stage::Service);  // home occupancy
        send(grant);
      });
      return;
    }
    // The requestor becomes the owner (Table I: read with no supplier in
    // its area, or any write). Writes also invalidate all providers.
    if (isWrite) {
      invalidateProviders(line->providers, block, home, requestor, txn);
      txn.grantProviders = emptyProPos();
    } else {
      txn.grantProviders = line->providers;
    }
    txn.ackCountKnown = true;
    txn.becomeOwner = true;
    txn.grantDirty = line->dirty;
    if (txn.cls == MissClass::UnpredL2 && txn.predicted)
      txn.cls = MissClass::PredMiss;
    txn.links += static_cast<std::uint32_t>(distance(home, requestor));
    Message grant;
    grant.type = txn.needsData ? kOwnerGrant : kAckCount;
    grant.cls = txn.needsData ? MsgClass::Data : MsgClass::Control;
    grant.src = home;
    grant.dst = requestor;
    grant.origin = requestor;
    grant.addr = block;
    grant.value = line->value;
    after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, grant] {
      stageMark(grant.addr, Stage::Service);  // home occupancy
      send(grant);
    });
    // Non-inclusive retention: the copy stays while the L1 owns the block
    // (never served; refreshed by a dirty relinquish/recall). The ProPos
    // moved to the new owner.
    line->dirty = false;
    line->providers = emptyProPos();
    setL2cOwner(block, requestor);
    return;
  }

  // Off-chip. Adaptive ownership placement (see DESIGN.md): read fills
  // migrate the ownership to the requestor only if the L2C$ can track it;
  // otherwise the home owns the filled line and the requestor becomes
  // its area's provider.
  txn.ackCountKnown = true;
  txn.cls = MissClass::Memory;
  txn.links += static_cast<std::uint32_t>(
      distance(home, cfg_.memControllerOf(block)) +
      distance(cfg_.memControllerOf(block), requestor));
  storeAtL2(home, block, memoryValue(block), /*dirty=*/false,
            emptyProPos());
  if (isWrite ||
      !bank.l2c.wouldDisplace(block, [this](Addr a) { return lineBusy(a); })) {
    txn.becomeOwner = true;
    setL2cOwner(block, requestor);
  } else {
    txn.becomeProvider = true;
    L2Line* fillLine = bank.l2.find(block);
    EECC_CHECK(fillLine != nullptr);
    fillLine->providers[static_cast<std::size_t>(areaOf(requestor))] =
        requestor;
    energy_.l2DirUpdate += 1;
  }
  memFetch(block, home, requestor, [this, block](std::uint64_t value) {
    auto t = txns_.find(block);
    EECC_CHECK(t != txns_.end());
    t->second.dataArrived = true;
    t->second.grantArrived = true;
    t->second.value = value;
    maybeCompleteAccess(block);
  });
}

void DiCoProvidersProtocol::maybeCompleteBackground(Addr block) {
  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end() && it->second.background);
  if (it->second.providerAcks != 0 || it->second.sharerAcks != 0) return;
  txns_.erase(it);
  releaseLine(block);
}

void DiCoProvidersProtocol::maybeCompleteAccess(Addr block) {
  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  EECC_CHECK(!txn.background);

  const bool dataReady =
      txn.dataArrived || (!txn.needsData && txn.grantArrived);
  if (!dataReady || !txn.ackCountKnown) return;

  // A writing provider sends its own area's invalidations only once it
  // holds the ownership (Section IV-A special case).
  if (txn.type == AccessType::Write && !txn.selfSharers.empty()) {
    const NodeSet targets = txn.selfSharers;
    txn.selfSharers.clear();
    txn.sharerAcks += targets.size();
    targets.forEach([this, block, tile = txn.requestor](NodeId s) {
      stats_.invalidationsSent += 1;
      Message inv;
      inv.type = kInval;
      inv.src = tile;
      inv.dst = s;
      inv.addr = block;
      inv.requestor = tile;
      send(inv);
    });
  }
  if (txn.providerAcks != 0 || txn.sharerAcks != 0 || txn.coreNotified)
    return;
  txn.coreNotified = true;

  const NodeId tile = txn.requestor;
  if (txn.type == AccessType::Read) {
    if (txn.becomeOwner) {
      bool anyProvider = false;
      for (const NodeId p : txn.grantProviders)
        anyProvider |= p != kInvalidNode;
      const L1State st = anyProvider || !txn.grantSharers.empty()
                             ? L1State::O
                         : txn.grantDirty ? L1State::M
                                          : L1State::E;
      installL1(tile, block, st, txn.grantDirty, txn.value, kInvalidNode,
                txn.grantSharers, txn.grantProviders);
    } else if (txn.becomeProvider) {
      installL1(tile, block, L1State::P, false, txn.value, txn.supplier,
                NodeSet{}, emptyProPos());
    } else {
      installL1(tile, block, L1State::S, false, txn.value, txn.supplier,
                NodeSet{}, emptyProPos());
    }
    recordRead(tile, txn.value);
  } else {
    installL1(tile, block, L1State::M, true, 0, kInvalidNode, NodeSet{},
              emptyProPos());
    L1Line* line = tileOf(tile).l1.find(block);
    EECC_CHECK(line != nullptr);
    line->value = commitWrite(block);
  }
  recordMiss(block, txn.cls, txn.start, txn.links);
  auto done = std::move(txn.done);
  txns_.erase(it);
  releaseLine(block);
  done();
}

void DiCoProvidersProtocol::onMessage(const Message& msg) {
  switch (msg.type) {
    case kReq:
    case kFwd:
      handleRequestAtL1(msg);
      return;

    case kFwdProvider: {
      stageMark(msg.addr, Stage::Request);  // provider-forwarded request leg
      const NodeId tile = msg.dst;
      energy_.l1TagProbe += 1;
      L1Line* line = tileOf(tile).l1.find(msg.addr);
      if (line != nullptr && line->isSupplier()) {
        supplierServeRead(tile, *line, msg);
        return;
      }
      // Stale forward: bounce through the home.
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.throughHome = true;
      it->second.links += static_cast<std::uint32_t>(
          distance(tile, homeOf(msg.addr)));
      Message fwd = msg;
      fwd.type = kReqHome;
      fwd.src = tile;
      fwd.dst = homeOf(msg.addr);
      fwd.forwarder = tile;
      send(fwd);
      return;
    }

    case kReqHome:
      handleRequestAtHome(msg);
      return;

    case kData:
    case kProviderGrant:
    case kOwnerGrant: {
      stageMark(msg.addr, Stage::DataReturn);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      Txn& txn = it->second;
      txn.dataArrived = true;
      txn.grantArrived = true;
      txn.value = msg.value;
      txn.supplier = msg.forwarder;
      if (msg.type == kData || msg.type == kProviderGrant)
        txn.ackCountKnown = true;
      if (msg.type == kProviderGrant) txn.becomeProvider = true;
      if (msg.forwarder != kInvalidNode && msg.forwarder != msg.dst) {
        tileOf(msg.dst).l1c.update(msg.addr, msg.forwarder);
        energy_.l1cUpdate += 1;
      }
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kAckCount: {
      stageMark(msg.addr, Stage::AckWait);
      auto ackIt = txns_.find(msg.addr);
      EECC_CHECK(ackIt != txns_.end());
      ackIt->second.grantArrived = true;
      maybeCompleteAccess(msg.addr);
      return;
    }

    case kInval: {
      stageMark(msg.addr, Stage::Fanout);
      const NodeId tile = msg.dst;
      auto& tl = tileOf(tile);
      energy_.l1TagProbe += 1;
      if (L1Line* line = tl.l1.find(msg.addr)) {
        struct Ops {
          Tile& tl;
          L1Line& line;
          bool guard(tbl::Guard) const { return true; }
          void setState(std::uint8_t s) {
            line.state = static_cast<L1State>(s);
          }
          void act(tbl::Action a) {
            EECC_CHECK_MSG(a == tbl::Action::Invalidate,
                           "action not in the inval vocabulary");
            tl.l1.invalidate(line);
          }
        } ops{tl, *line};
        table_.run(static_cast<std::uint8_t>(line->state), tbl::Event::Inval,
                   ops);
      }
      if (msg.requestor != tile) {
        tl.l1c.update(msg.addr, msg.requestor);
        energy_.l1cUpdate += 1;
      }
      Message ack;
      ack.type = kInvalAck;
      ack.src = tile;
      ack.dst = msg.requestor;
      ack.origin = msg.requestor;  // the write that forced the invalidation
      ack.addr = msg.addr;
      after(cfg_.l1.tagLatency, [this, ack] { send(ack); });
      return;
    }

    case kInvalAck: {
      stageMark(msg.addr, Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.sharerAcks -= 1;
      if (it->second.background) maybeCompleteBackground(msg.addr);
      else maybeCompleteAccess(msg.addr);
      return;
    }

    case kInvalProvider: {
      stageMark(msg.addr, Stage::Fanout);
      const NodeId tile = msg.dst;
      auto& tl = tileOf(tile);
      energy_.l1TagProbe += 1;
      std::uint64_t count = 0;
      if (L1Line* line = tl.l1.find(msg.addr)) {
        energy_.l1DirRead += 1;
        NodeSet targets = line->areaSharers;
        targets.erase(tile);
        targets.erase(msg.requestor);
        count = static_cast<std::uint64_t>(targets.size());
        targets.forEach([this, tile, &msg](NodeId s) {
          stats_.invalidationsSent += 1;
          Message inv;
          inv.type = kInval;
          inv.src = tile;
          inv.dst = s;
          inv.addr = msg.addr;
          inv.requestor = msg.requestor;
          send(inv);
        });
        tl.l1.invalidate(*line);
      }
      if (msg.requestor != tile) {
        tl.l1c.update(msg.addr, msg.requestor);
        energy_.l1cUpdate += 1;
      }
      Message ack;
      ack.type = kInvalProviderAck;
      ack.src = tile;
      ack.dst = msg.requestor;
      ack.origin = msg.requestor;
      ack.addr = msg.addr;
      ack.aux = count;
      after(cfg_.l1.tagLatency, [this, ack] { send(ack); });
      return;
    }

    case kInvalProviderAck: {
      stageMark(msg.addr, Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      Txn& txn = it->second;
      txn.providerAcks -= 1;
      txn.sharerAcks += static_cast<std::int32_t>(msg.aux);
      EECC_CHECK(txn.providerAcks >= 0);
      if (txn.background) maybeCompleteBackground(msg.addr);
      else maybeCompleteAccess(msg.addr);
      return;
    }

    case kHint: {
      if (msg.requestor != msg.dst) {
        auto& tl = tileOf(msg.dst);
        tl.l1c.update(msg.addr, msg.requestor);
        energy_.l1cUpdate += 1;
        if (L1Line* line = tl.l1.find(msg.addr))
          if (line->state == L1State::S) line->supplier = msg.requestor;
      }
      return;
    }

    // Handshake / notification traffic whose state effects were applied
    // atomically at the initiator.
    case kChangeOwner:
    case kChangeOwnerAck:
    case kChangeProvider:
    case kChangeProviderAck:
    case kNoProvider:
    case kRelinquish:
    case kRecall:
    case kRecallData:
      return;

    default:
      EECC_CHECK_MSG(false, "unknown DiCo-Providers message");
  }
}

// ------------------------------------------------------------ Introspection

DiCoProvidersProtocol::LineView DiCoProvidersProtocol::l1Line(
    NodeId tile, Addr block) const {
  const auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
  LineView v;
  if (const L1Line* line = l1.find(block)) {
    v.valid = true;
    v.value = line->value;
    v.sharerCount = line->areaSharers.size();
    for (const NodeId p : line->providers)
      if (p != kInvalidNode) v.providerCount += 1;
    switch (line->state) {
      case L1State::S: v.state = 'S'; break;
      case L1State::E: v.state = 'E'; break;
      case L1State::M: v.state = 'M'; break;
      case L1State::O: v.state = 'O'; break;
      case L1State::P: v.state = 'P'; break;
    }
  }
  return v;
}

void DiCoProvidersProtocol::forEachL1Copy(
    const std::function<void(const L1CopyView&)>& fn) const {
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          L1CopyView v;
          v.tile = t;
          v.block = line.addr;
          v.state = line.state == L1State::M   ? 'M'
                    : line.state == L1State::E ? 'E'
                    : line.state == L1State::O ? 'O'
                    : line.state == L1State::P ? 'P'
                                               : 'S';
          v.value = line.value;
          v.busy = lineBusy(line.addr);
          fn(v);
        });
  }
}

void DiCoProvidersProtocol::forEachL2Block(
    const std::function<void(NodeId tile, Addr block)>& fn) const {
  for (NodeId h = 0; h < cfg_.tiles(); ++h)
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) { fn(h, line.addr); });
}

void DiCoProvidersProtocol::auditInvariants(const AuditFailFn& fail) const {
  auto* self = const_cast<DiCoProvidersProtocol*>(this);
  std::unordered_map<Addr, NodeId> ownerOfBlock;
  std::unordered_map<Addr, std::vector<NodeId>> sharersOf;
  std::unordered_map<Addr, std::vector<NodeId>> providersOf;

  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          if (lineBusy(line.addr)) return;
          if (line.value != committedValue(line.addr))
            fail("L1 copy holds a stale value: tile " + std::to_string(t) +
                 ", " + describeBlock(line.addr));
          if (line.isOwner()) {
            if (ownerOfBlock.contains(line.addr))
              fail("two owners for one block: tiles " +
                   std::to_string(ownerOfBlock[line.addr]) + " and " +
                   std::to_string(t) + ", " + describeBlock(line.addr));
            ownerOfBlock[line.addr] = t;
          } else if (line.state == L1State::P) {
            providersOf[line.addr].push_back(t);
          } else {
            sharersOf[line.addr].push_back(t);
          }
        });
  }

  // L2C$ precision and owner/L2 exclusivity.
  for (const auto& [block, owner] : ownerOfBlock) {
    if (l2cOwner(block) != owner)
      fail("L2C$ does not point at the L1 owner: " + describeBlock(block) +
           ", owner " + std::to_string(owner) + ", L2C$ says " +
           std::to_string(l2cOwner(block)));
  }

  // Every provider must be registered at the owner for its area.
  for (const auto& [block, provs] : providersOf) {
    for (const NodeId p : provs) {
      if (self->providerOf(block, cfg_.areaOf(p)) != p)
        fail("provider not registered at the owner: tile " +
             std::to_string(p) + ", area " +
             std::to_string(cfg_.areaOf(p)) + ", " + describeBlock(block));
    }
  }

  // Every shared copy must be covered by a supplier of its area.
  for (const auto& [block, list] : sharersOf) {
    for (const NodeId s : list) {
      const AreaId a = cfg_.areaOf(s);
      bool covered = false;
      if (auto it = ownerOfBlock.find(block);
          it != ownerOfBlock.end() && cfg_.areaOf(it->second) == a) {
        const L1Line* ol =
            tiles_[static_cast<std::size_t>(it->second)].l1.find(block);
        covered = ol != nullptr && ol->areaSharers.contains(s);
      }
      if (!covered) {
        const NodeId p = self->providerOf(block, a);
        if (p != kInvalidNode) {
          const L1Line* pl =
              tiles_[static_cast<std::size_t>(p)].l1.find(block);
          covered = pl != nullptr && (p == s || pl->areaSharers.contains(s));
        }
      }
      if (!covered)
        fail("shared copy not covered by any area supplier: tile " +
             std::to_string(s) + ", area " + std::to_string(a) + ", " +
             describeBlock(block));
    }
  }

  // L2-owned lines hold the committed value (retained copies under an L1
  // owner may be stale by design).
  for (NodeId h = 0; h < cfg_.tiles(); ++h) {
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) {
          if (lineBusy(line.addr)) return;
          if (l2cOwner(line.addr) != kInvalidNode) return;
          if (line.value != committedValue(line.addr))
            fail("home-owned L2 line holds a stale value: " +
                 describeBlock(line.addr));
        });
  }
}

}  // namespace eecc
