#include "protocols/table_engine.h"

#include <cstdlib>
#include <cstring>

namespace eecc::tbl {

bool tableSelftestRequested(const char* tag) {
  const char* req = std::getenv("EECC_TABLE_SELFTEST");
  if (req == nullptr || req[0] == '\0') return false;
  return std::strcmp(req, tag) == 0 || std::strcmp(req, "all") == 0 ||
         std::strcmp(req, "1") == 0;
}

ProtocolTable::ProtocolTable(const char* tag,
                             std::span<const Transition> rows,
                             std::uint8_t numStates,
                             std::uint8_t sharedState,
                             std::uint8_t modifiedState)
    : rows_(rows.begin(), rows.end()), numStates_(numStates) {
  if (tableSelftestRequested(tag)) {
    // The drill typo: a write to a Shared line "hits" in place, without
    // ever invalidating the other sharers — the classic transcription slip
    // a table row is one careless edit away from. Any remote reader of a
    // stale copy now trips the value monitor, so the differential fuzzer
    // must catch this within its CI seed budget.
    for (Transition& t : rows_) {
      if (t.state == sharedState && t.event == Event::LocalWrite &&
          t.guard == Guard::Always) {
        t.outcome = Outcome::Hit;
        t.next = modifiedState;
        t.actions = {Action::CommitWrite, Action::ChargeL1Write,
                     Action::Touch, Action::None, Action::None};
        typoInjected_ = true;
      }
    }
  }
  // Dense (state, event) index. Rows of one pair are kept in declaration
  // order — guard chains read top to bottom like the hand-written
  // if-ladders they replaced.
  index_.assign(static_cast<std::size_t>(numStates_) * kEventCount, Slot{});
  std::vector<Transition> sorted;
  sorted.reserve(rows_.size());
  for (std::size_t st = 0; st < numStates_; ++st) {
    for (std::size_t ev = 0; ev < kEventCount; ++ev) {
      Slot& s = index_[st * kEventCount + ev];
      s.begin = static_cast<std::uint32_t>(sorted.size());
      for (const Transition& t : rows_) {
        if (t.state == st && static_cast<std::size_t>(t.event) == ev)
          sorted.push_back(t);
      }
      s.count = static_cast<std::uint32_t>(sorted.size()) - s.begin;
    }
  }
  rows_ = std::move(sorted);
}

std::vector<std::string> ProtocolTable::validate() const {
  std::vector<std::string> defects;
  const char* eventNames[kEventCount] = {"LocalRead", "LocalWrite",
                                         "Replace",   "Inval",
                                         "SnoopRead", "SnoopWrite"};
  for (const Transition& t : rows_) {
    if (t.state >= numStates_)
      defects.push_back("row state " + std::to_string(t.state) +
                        " outside the protocol's " +
                        std::to_string(numStates_) + "-state enum");
    if (t.next != kKeepState && t.next >= numStates_)
      defects.push_back("row writes next-state " + std::to_string(t.next) +
                        " outside the protocol's " +
                        std::to_string(numStates_) + "-state enum");
    bool terminated = false;
    for (const Action a : t.actions) {
      if (a == Action::None) {
        terminated = true;
      } else if (terminated) {
        defects.push_back("action list resumes after its None terminator "
                          "(state " +
                          std::to_string(t.state) + ")");
        break;
      }
    }
  }
  for (std::size_t st = 0; st < numStates_; ++st) {
    for (std::size_t ev = 0; ev < kEventCount; ++ev) {
      const Slot s = index_[st * kEventCount + ev];
      if (s.count == 0) {
        defects.push_back("state " + std::to_string(st) + " × " +
                          eventNames[ev] + " has no row");
        continue;
      }
      // Totality: the chain must end unconditionally, and an Always row
      // makes everything after it dead.
      for (std::uint32_t i = 0; i < s.count; ++i) {
        const bool always = rows_[s.begin + i].guard == Guard::Always;
        const bool last = i + 1 == s.count;
        if (always && !last)
          defects.push_back("state " + std::to_string(st) + " × " +
                            eventNames[ev] +
                            " has rows after its Always row (dead)");
        if (last && !always)
          defects.push_back("state " + std::to_string(st) + " × " +
                            eventNames[ev] +
                            " can fall through every guard");
      }
    }
  }
  return defects;
}

}  // namespace eecc::tbl
