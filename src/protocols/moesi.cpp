#include "protocols/moesi.h"

#include <algorithm>

namespace eecc {

namespace {
enum MoesiMsg : std::uint16_t {
  kSnoopReq = Protocol::kFirstProtocolMsg,  // requestor -> every tile
  kSnoopAck,   // snooped tile -> requestor (aux bit0 = keeps a shared
               // copy, bit1 = supplies data; Data class iff supplying)
  kHomeReq,    // requestor -> home (no cache supplied; fallback)
  kHomeData,   // home -> requestor
  kWbData      // dirty writeback -> home (M/O evictions only)
};

// The MOESI stable-state automaton as table data (DESIGN.md §15). State
// ids mirror MoesiProtocol::L1State declaration order. The single delta
// against the MESI table is the Owned state: a snooped M supplies and
// keeps its dirty data as O (no WritebackData), O keeps answering later
// readers, and only eviction writes the data back. No escapes needed.
constexpr std::uint8_t kS = 0, kE = 1, kM = 2, kO = 3;
constexpr tbl::Transition kMoesiTable[] = {
    // Core reads hit on any valid copy.
    {kS, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kE, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kM, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kO, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    // Core writes: E upgrades silently; S *and O* need the broadcast to
    // invalidate the other sharers first (O already holds valid data, so
    // that transaction is an upgrade, not a fetch).
    {kS, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kO, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    {kM, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write,
      tbl::Action::Touch}},
    // Replacement: S and E evict silently; M and O own the only fresh
    // copy of their data, so both write through to the home L2 bank.
    {kS, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kM, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::WritebackData, tbl::Action::Invalidate}},
    {kO, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::WritebackData, tbl::Action::Invalidate}},
    // An invalidation kills the copy whatever its state (snooping raises
    // these through SnoopWrite; the rows keep the automaton total).
    {kS, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kM, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kO, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    // Snooped reads — the MOESI payoff: M downgrades to O and keeps its
    // dirty data (no writeback), O stays O and keeps supplying. Only E
    // downgrades to plain S (its data is clean, the L2 still matches).
    {kS, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled, kS,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData}},
    {kM, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled, kO,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData}},
    {kO, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::ChargeL1Read, tbl::Action::SupplyData}},
    // Snooped writes: every copy dies; E, M and O hand their data to the
    // new owner on the way out.
    {kS, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Invalidate}},
    {kM, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Invalidate}},
    {kO, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Invalidate}},
};
}  // namespace

tbl::ProtocolTable MoesiProtocol::makeStableTable() {
  return tbl::ProtocolTable("moesi", kMoesiTable, /*numStates=*/4,
                            /*sharedState=*/kS, /*modifiedState=*/kM);
}

MoesiProtocol::MoesiProtocol(EventQueue& events, Network& net,
                             const CmpConfig& cfg)
    : Protocol(events, net, cfg), table_(makeStableTable()) {
  tiles_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  banks_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_.emplace_back(cfg_);
    banks_.emplace_back(cfg_);
  }
  maxDist_.resize(static_cast<std::size_t>(cfg_.tiles()), 0);
  for (NodeId t = 0; t < cfg_.tiles(); ++t)
    for (NodeId u = 0; u < cfg_.tiles(); ++u)
      maxDist_[static_cast<std::size_t>(t)] =
          std::max(maxDist_[static_cast<std::size_t>(t)],
                   static_cast<std::uint32_t>(distance(t, u)));
}

// ---------------------------------------------------------------- L1 side

bool MoesiProtocol::tryHit(NodeId tile, Addr block, AccessType type) {
  auto& l1 = tileOf(tile).l1;
  energy_.l1TagProbe += 1;
  L1Line* line = l1.find(block);
  if (line == nullptr) return false;
  struct Ops {
    MoesiProtocol& p;
    CacheArray<L1Line>& l1;
    L1Line& line;
    NodeId tile;
    Addr block;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t s) { line.state = static_cast<L1State>(s); }
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
        case tbl::Action::ChargeL1Write: p.energy_.l1DataWrite += 1; break;
        case tbl::Action::Touch: l1.touch(line); break;
        case tbl::Action::RecordRead: p.recordRead(tile, line.value); break;
        case tbl::Action::CommitWrite:
          line.value = p.commitWrite(block);
          break;
        default: EECC_CHECK_MSG(false, "action not in the hit vocabulary");
      }
    }
  } ops{*this, l1, *line, tile, block};
  return table_.run(static_cast<std::uint8_t>(line->state),
                    type == AccessType::Read ? tbl::Event::LocalRead
                                             : tbl::Event::LocalWrite,
                    ops) == tbl::Outcome::Hit;
}

void MoesiProtocol::installL1(NodeId tile, Addr block, L1State state,
                              std::uint64_t value) {
  auto& l1 = tileOf(tile).l1;
  if (L1Line* existing = l1.find(block)) {
    existing->state = state;
    existing->value = value;
    l1.touch(*existing);
    energy_.l1DataWrite += 1;
    return;
  }
  L1Line* victim = l1.selectVictim(
      block, [this](const L1Line& l) { return lineBusy(l.addr); });
  if (victim == nullptr) victim = l1.selectVictim(block, nullptr);
  EECC_CHECK(victim != nullptr);
  if (victim->valid) evictL1Line(tile, *victim);
  L1Line& line = l1.install(*victim, block);
  line.state = state;
  line.value = value;
  energy_.l1DataWrite += 1;
  energy_.l1TagProbe += 1;
}

void MoesiProtocol::evictL1Line(NodeId tile, L1Line& line) {
  struct Ops {
    MoesiProtocol& p;
    NodeId tile;
    L1Line& line;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t) {}
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::WritebackData:
          p.writebackToHome(tile, line);
          break;
        case tbl::Action::Invalidate:
          p.tileOf(tile).l1.invalidate(line);
          break;
        default:
          EECC_CHECK_MSG(false, "action not in the replace vocabulary");
      }
    }
  } ops{*this, tile, line};
  table_.run(static_cast<std::uint8_t>(line.state), tbl::Event::Replace, ops);
}

void MoesiProtocol::writebackToHome(NodeId tile, const L1Line& line) {
  stats_.writebacks += 1;
  energy_.l1DataRead += 1;
  PendingWb& pending = pendingWb_[line.addr];
  pending.value = line.value;
  pending.count += 1;
  Message wb;
  wb.type = kWbData;
  wb.cls = MsgClass::Data;
  wb.src = tile;
  wb.dst = homeOf(line.addr);
  wb.addr = line.addr;
  wb.value = line.value;
  send(wb);
}

void MoesiProtocol::handleSnoop(const Message& msg) {
  stageMark(msg.addr, Stage::Fanout);  // the snoop wave reached a tile
  const NodeId tile = msg.dst;
  if (tile == msg.requestor) return;  // the broadcast's self-copy
  const bool isWrite = (msg.aux & 1) != 0;
  auto& tl = tileOf(tile);
  energy_.l1TagProbe += 1;
  L1Line* line = tl.l1.find(msg.addr);

  bool supplied = false;
  std::uint64_t value = 0;
  if (line != nullptr) {
    struct Ops {
      MoesiProtocol& p;
      Tile& tl;
      NodeId tile;
      L1Line& line;
      bool& supplied;
      std::uint64_t& value;
      bool guard(tbl::Guard) const { return true; }
      void setState(std::uint8_t s) { line.state = static_cast<L1State>(s); }
      void act(tbl::Action a) {
        switch (a) {
          case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
          case tbl::Action::SupplyData:
            supplied = true;
            value = line.value;
            break;
          case tbl::Action::Invalidate: tl.l1.invalidate(line); break;
          default:
            EECC_CHECK_MSG(false, "action not in the snoop vocabulary");
        }
      }
    } ops{*this, tl, tile, *line, supplied, value};
    table_.run(static_cast<std::uint8_t>(line->state),
               isWrite ? tbl::Event::SnoopWrite : tbl::Event::SnoopRead, ops);
  }
  // Reads leave any probed copy shared (O included); writes leave none.
  const bool keepsShared = !isWrite && line != nullptr;

  Message ack;
  ack.type = kSnoopAck;
  ack.cls = supplied ? MsgClass::Data : MsgClass::Control;
  ack.src = tile;
  ack.dst = msg.requestor;
  ack.origin = msg.requestor;
  ack.addr = msg.addr;
  ack.aux = (keepsShared ? 1u : 0u) | (supplied ? 2u : 0u);
  ack.value = value;
  const Tick delay =
      cfg_.l1.tagLatency + (supplied ? cfg_.l1.dataLatency : 0);
  after(delay, [this, ack] { send(ack); });
}

// --------------------------------------------------------------- Home side

void MoesiProtocol::storeAtL2(NodeId home, Addr block, std::uint64_t value,
                              bool dirty) {
  Bank& bank = bankOf(home);
  energy_.l2DataWrite += 1;
  if (L2Line* line = bank.l2.find(block)) {
    line->value = value;
    line->dirty = line->dirty || dirty;
    bank.l2.touch(*line);
    return;
  }
  L2Line* victim = bank.l2.selectVictim(
      block, [this](const L2Line& l) { return lineBusy(l.addr); });
  if (victim == nullptr) victim = bank.l2.selectVictim(block, nullptr);
  EECC_CHECK(victim != nullptr);
  if (victim->valid) evictL2Line(home, *victim);
  L2Line& line = bank.l2.install(*victim, block);
  line.value = value;
  line.dirty = dirty;
}

void MoesiProtocol::evictL2Line(NodeId home, L2Line& line) {
  stats_.l2Evictions += 1;
  if (line.dirty) {
    energy_.l2DataRead += 1;
    memWriteback(line.addr, home, line.value);
  }
  bankOf(home).l2.invalidate(line);
}

void MoesiProtocol::homeHandleRequest(const Message& msg) {
  const NodeId home = msg.dst;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;
  stageMark(block, Stage::Request);  // home fallback request leg
  Bank& bank = bankOf(home);
  energy_.l2TagProbe += 1;

  auto it = txns_.find(block);
  EECC_CHECK_MSG(it != txns_.end(), "home request without transaction");
  Txn& txn = it->second;

  // Catch any writeback still in flight for this block: its value is the
  // freshest copy anywhere, and the stale L2 array must not win the race.
  if (auto wb = pendingWb_.find(block); wb != pendingWb_.end())
    storeAtL2(home, block, wb->second.value, /*dirty=*/true);

  if (L2Line* line = bank.l2.find(block)) {
    energy_.l2DataRead += 1;
    stats_.l2DataHits += 1;
    bank.l2.touch(*line);
    txn.cls = MissClass::UnpredL2;
    txn.links += static_cast<std::uint32_t>(distance(home, requestor));
    Message data;
    data.type = kHomeData;
    data.cls = MsgClass::Data;
    data.src = home;
    data.dst = requestor;
    data.origin = requestor;
    data.addr = block;
    data.value = line->value;
    after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, data] {
      stageMark(data.addr, Stage::Service);  // home occupancy
      send(data);
    });
    return;
  }
  // Off-chip; the home keeps a clean copy of the fill for later readers.
  txn.cls = MissClass::Memory;
  txn.links += static_cast<std::uint32_t>(
      distance(home, cfg_.memControllerOf(block)) +
      distance(cfg_.memControllerOf(block), requestor));
  storeAtL2(home, block, memoryValue(block), /*dirty=*/false);
  memFetch(block, home, requestor, [this, block](std::uint64_t value) {
    auto t = txns_.find(block);
    EECC_CHECK(t != txns_.end());
    t->second.dataArrived = true;
    t->second.value = value;
    completeAccess(block);
  });
}

// ------------------------------------------------------------ Transactions

void MoesiProtocol::startMiss(NodeId tile, Addr block, AccessType type,
                              DoneFn done) {
  Txn& txn = txns_[block];
  txn = Txn{};
  txn.requestor = tile;
  txn.type = type;
  txn.done = std::move(done);
  txn.start = events_.now();

  if (type == AccessType::Write &&
      tileOf(tile).l1.find(block) != nullptr) {
    txn.needsData = false;  // upgrade from S or O (both hold valid data)
    stats_.upgrades += 1;
  }

  txn.acksOutstanding = static_cast<std::int32_t>(cfg_.tiles()) - 1;
  // Critical path: the snoop wave out to the farthest tile and its ack
  // back; the home fallback adds its own hops on top.
  txn.links += 2 * maxDist_[static_cast<std::size_t>(tile)];

  Message req;
  req.type = kSnoopReq;
  req.src = tile;
  req.addr = block;
  req.requestor = tile;
  req.aux = type == AccessType::Write ? 1 : 0;
  sendBroadcast(req);
  if (txn.acksOutstanding == 0) onAllAcks(block, txn);  // single-tile chip
}

void MoesiProtocol::onAllAcks(Addr block, Txn& txn) {
  if (txn.needsData && !txn.dataArrived) {
    // No cache supplied: fall back to the home bank (then memory).
    if (!txn.homeAsked) {
      txn.homeAsked = true;
      const NodeId home = homeOf(block);
      txn.links +=
          static_cast<std::uint32_t>(distance(txn.requestor, home));
      Message req;
      req.type = kHomeReq;
      req.src = txn.requestor;
      req.dst = home;
      req.addr = block;
      req.requestor = txn.requestor;
      send(req);
    }
    return;
  }
  completeAccess(block);
}

void MoesiProtocol::completeAccess(Addr block) {
  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  if (txn.type == AccessType::Read) {
    // E iff no other tile kept a copy (an O supplier acks "shared", so a
    // dirty-shared read installs plain S next to the owner).
    installL1(txn.requestor, block,
              txn.sharedSeen ? L1State::S : L1State::E, txn.value);
    recordRead(txn.requestor, txn.value);
  } else {
    installL1(txn.requestor, block, L1State::M, commitWrite(block));
  }
  recordMiss(block, txn.cls, txn.start, txn.links);
  const DoneFn done = std::move(txn.done);
  txns_.erase(it);
  done();
  releaseLine(block);
}

void MoesiProtocol::onMessage(const Message& msg) {
  switch (msg.type) {
    case kSnoopReq:
      handleSnoop(msg);
      return;

    case kSnoopAck: {
      // An ack carrying data is the cache-to-cache transfer itself.
      stageMark(msg.addr,
                (msg.aux & 2) != 0 ? Stage::DataReturn : Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      Txn& txn = it->second;
      txn.acksOutstanding -= 1;
      EECC_CHECK(txn.acksOutstanding >= 0);
      if ((msg.aux & 1) != 0) txn.sharedSeen = true;
      if ((msg.aux & 2) != 0) {
        txn.dataArrived = true;
        txn.value = msg.value;
        txn.cls = MissClass::UnpredOwner;  // cache-to-cache transfer
      }
      if (txn.acksOutstanding == 0) onAllAcks(msg.addr, txn);
      return;
    }

    case kHomeReq:
      homeHandleRequest(msg);
      return;

    case kHomeData: {
      stageMark(msg.addr, Stage::DataReturn);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.dataArrived = true;
      it->second.value = msg.value;
      completeAccess(msg.addr);
      return;
    }

    case kWbData: {
      // Apply the buffered (latest) value, not the message's: same-block
      // writebacks can be delivered out of order.
      auto wb = pendingWb_.find(msg.addr);
      EECC_CHECK(wb != pendingWb_.end());
      storeAtL2(msg.dst, msg.addr, wb->second.value, /*dirty=*/true);
      if (--wb->second.count == 0) pendingWb_.erase(wb);
      return;
    }
  }
  EECC_CHECK_MSG(false, "unknown MOESI message type");
}

// ------------------------------------------------------------- Test hooks

namespace {
char moesiStateChar(std::uint8_t s) {
  switch (s) {
    case kS: return 'S';
    case kE: return 'E';
    case kM: return 'M';
    case kO: return 'O';
  }
  return '?';
}
}  // namespace

MoesiProtocol::LineView MoesiProtocol::l1Line(NodeId tile,
                                              Addr block) const {
  const auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
  LineView v;
  if (const L1Line* line = l1.find(block)) {
    v.valid = true;
    v.value = line->value;
    v.state = moesiStateChar(static_cast<std::uint8_t>(line->state));
  }
  return v;
}

void MoesiProtocol::forEachL1Copy(
    const std::function<void(const L1CopyView&)>& fn) const {
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          L1CopyView v;
          v.tile = t;
          v.block = line.addr;
          v.state = moesiStateChar(static_cast<std::uint8_t>(line.state));
          v.value = line.value;
          v.busy = lineBusy(line.addr);
          fn(v);
        });
  }
}

void MoesiProtocol::forEachL2Block(
    const std::function<void(NodeId tile, Addr block)>& fn) const {
  for (NodeId h = 0; h < cfg_.tiles(); ++h)
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) { fn(h, line.addr); });
}

void MoesiProtocol::auditInvariants(const AuditFailFn& fail) const {
  // Assumes quiesced blocks (in-flight ones are skipped). Per block: at
  // most one owner-class (E/M/O) copy; E/M excludes other copies (O
  // legally coexists with S sharers); every copy holds the committed
  // value; the home L2 value matches the committed value unless an L1
  // owner exists (O means dirty sharing: the L2 stays stale on purpose).
  std::unordered_map<Addr, NodeId> owner;
  std::unordered_map<Addr, NodeId> exclusiveHolder;
  std::unordered_map<Addr, std::vector<NodeId>> holders;
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          if (lineBusy(line.addr)) return;
          holders[line.addr].push_back(t);
          if (line.state != L1State::S) {
            if (owner.contains(line.addr))
              fail("two owner-class copies (SWMR violated): tiles " +
                   std::to_string(owner[line.addr]) + " and " +
                   std::to_string(t) + ", " + describeBlock(line.addr));
            owner[line.addr] = t;
            if (line.state != L1State::O) exclusiveHolder[line.addr] = t;
          }
          if (line.value != committedValue(line.addr))
            fail("L1 copy holds a stale value: tile " + std::to_string(t) +
                 ", " + describeBlock(line.addr));
        });
  }
  for (const auto& [block, list] : holders)
    if (exclusiveHolder.contains(block) && list.size() != 1)
      fail("E/M copy coexists with other copies: " + describeBlock(block));
  for (NodeId h = 0; h < cfg_.tiles(); ++h) {
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) {
          if (lineBusy(line.addr)) return;
          if (pendingWb_.contains(line.addr)) return;  // wb in flight
          if (!owner.contains(line.addr) &&
              line.value != committedValue(line.addr))
            fail("L2 value stale with no L1 owner: " +
                 describeBlock(line.addr));
        });
  }
}

}  // namespace eecc
