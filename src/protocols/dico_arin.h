// DiCo-Arin (Section III-B / IV-B).
//
// A simplification of DiCo-Providers for the virtualized scenario. Blocks
// confined to one area behave exactly like DiCo (with an area-local sharing
// map). The first read from a remote area dissolves the ownership: the
// former owner becomes a provider, the data is copied to the home L2 —
// which becomes a provider and the permanent ordering point — and the block
// enters "global" mode. The home keeps only one provider pointer per area
// (no sharer maps); every copy handed out makes its receiver a provider;
// stale pointers are repaired through the forwarder identity carried by
// forwarded requests. Invalidating a global block (write or L2 eviction)
// uses the safe three-way broadcast: invalidate-broadcast, all-L1 acks,
// unblock-broadcast.
#pragma once

#include <array>
#include <unordered_map>

#include "cache/cache_array.h"
#include "common/bits.h"
#include "cache/coherence_cache.h"
#include "cache/node_set.h"
#include "protocols/protocol.h"
#include "protocols/table_engine.h"

namespace eecc {

class DiCoArinProtocol final : public Protocol {
 public:
  static constexpr std::uint32_t kMaxAreas = 16;

  DiCoArinProtocol(EventQueue& events, Network& net, const CmpConfig& cfg);

  ProtocolKind kind() const override { return ProtocolKind::DiCoArin; }
  bool tryHit(NodeId tile, Addr block, AccessType type) override;
  void auditInvariants(const AuditFailFn& fail) const override;
  void forEachL1Copy(
      const std::function<void(const L1CopyView&)>& fn) const override;
  void forEachL2Block(
      const std::function<void(NodeId tile, Addr block)>& fn) const override;

  struct LineView {
    bool valid = false;
    char state = 'I';  // I/S/E/M/O/P
    std::uint64_t value = 0;
  };
  LineView l1Line(NodeId tile, Addr block) const;
  NodeId l2cOwner(Addr block) const;
  /// True when the block is currently in global (inter-area) mode at its
  /// home L2 (test hook).
  bool isGlobal(Addr block) const;

  /// The MOSI+E+P stable-state table this engine interprets (DESIGN.md
  /// §15); exposed so tests/table_engine_test.cpp can audit it.
  static tbl::ProtocolTable makeStableTable();

 protected:
  void startMiss(NodeId tile, Addr block, AccessType type,
                 DoneFn done) override;
  void onMessage(const Message& msg) override;

 private:
  enum class L1State : std::uint8_t { S, E, M, O, P };
  enum class L2Mode : std::uint8_t { SingleAreaOwner, Global };

  using ProPoArray = std::array<NodeId, kMaxAreas>;
  static ProPoArray emptyProPos() {
    ProPoArray a;
    a.fill(kInvalidNode);
    return a;
  }

  struct L1Line : CacheLineBase {
    L1State state = L1State::S;
    bool dirty = false;
    std::uint64_t value = 0;
    NodeId supplier = kInvalidNode;
    NodeSet areaSharers;  ///< Local-area map (owner of single-area blocks).

    bool isOwner() const {
      return state == L1State::E || state == L1State::M ||
             state == L1State::O;
    }
  };

  struct L2Line : CacheLineBase {
    L2Mode mode = L2Mode::SingleAreaOwner;
    bool dirty = false;
    std::uint64_t value = 0;
    AreaId area = -1;      ///< Single-area mode: which area holds copies.
    NodeSet sharers;       ///< Single-area mode sharing map.
    ProPoArray providers = emptyProPos();  ///< Global mode ProPos.
  };

  struct Tile {
    CacheArray<L1Line> l1;
    CoherenceCache l1c;
    explicit Tile(const CmpConfig& c)
        : l1(c.l1.entries, c.l1.assoc), l1c(c.l1cEntries, c.l1cAssoc) {}
  };
  struct Bank {
    CacheArray<L2Line> l2;
    CoherenceCache l2c;
    explicit Bank(const CmpConfig& c)
        : l2(c.l2.entries, c.l2.assoc,
             log2ceil(static_cast<std::uint64_t>(c.tiles()))),
          l2c(c.l2cEntries, c.l2cAssoc,
              log2ceil(static_cast<std::uint64_t>(c.tiles()))) {}
  };

  struct Txn {
    NodeId requestor = kInvalidNode;
    AccessType type = AccessType::Read;
    DoneFn done;
    Tick start = 0;
    std::uint32_t links = 0;
    bool predicted = false;
    bool throughHome = false;
    bool needsData = true;
    std::int32_t acksOutstanding = 0;
    bool ackCountKnown = false;
    bool dataArrived = false;
    bool grantArrived = false;  ///< Grant / ack-count message landed.
    bool coreNotified = false;
    bool unblockPending = false;  ///< Third broadcast step still owed.
    std::uint64_t value = 0;
    NodeId supplier = kInvalidNode;
    MissClass cls = MissClass::UnpredL2;
    bool becomeOwner = false;
    bool becomeProvider = false;
    bool grantDirty = false;
    NodeSet grantSharers;
    // Background L2-line eviction.
    bool background = false;
    std::int32_t bgAcks = 0;
    bool bgGlobal = false;
    bool bgDirty = false;
    std::uint64_t bgValue = 0;
  };

  Tile& tileOf(NodeId t) { return tiles_[static_cast<std::size_t>(t)]; }
  Bank& bankOf(NodeId h) { return banks_[static_cast<std::size_t>(h)]; }

  // --- L1 management ---
  void installL1(NodeId tile, Addr block, L1State state, bool dirty,
                 std::uint64_t value, NodeId supplier, const NodeSet& sharers);
  void evictL1Line(NodeId tile, L1Line& line);
  /// Replace-event table escape: sharers and providers evict silently,
  /// retaining the supplier prediction in the L1C$ (IV-B).
  void retainSupplierHint(NodeId tile, const L1Line& line);
  void evictOwnerLine(NodeId tile, L1Line& line);

  // --- Home management ---
  void setL2cOwner(Addr block, NodeId owner);
  void recallOwnership(Addr block, NodeId owner);
  L2Line& storeAtL2(NodeId home, Addr block, std::uint64_t value, bool dirty);
  void evictL2Line(NodeId home, L2Line& line);
  /// Owner-side global transition: the owner L1 becomes a provider and the
  /// block moves to the home L2 in global mode (Section III-B).
  void globalizeFromOwner(NodeId owner, L1Line& line, NodeId firstRemote);

  // --- Transaction steps ---
  void handleRequestAtL1(const Message& msg);
  void handleRequestAtHome(const Message& msg);
  void serveGlobalRead(NodeId home, L2Line& line, const Message& msg);
  void startGlobalWrite(NodeId home, L2Line& line, const Message& msg);
  void ownerServeWrite(NodeId node, L1Line& line, const Message& msg);
  void supplierServeRead(NodeId node, L1Line& line, const Message& msg,
                         bool asProvider);
  /// SnoopRead table escape at an owner for a remote-area requestor: the
  /// first such read dissolves the ownership (Section III-B) — the data is
  /// granted, and the block globalizes at the home.
  void ownerServeRemoteRead(NodeId tile, L1Line& line, const Message& msg);
  void maybeCompleteAccess(Addr block);

  tbl::ProtocolTable table_;
  std::vector<Tile> tiles_;
  std::vector<Bank> banks_;
  std::unordered_map<Addr, Txn> txns_;
};

}  // namespace eecc
