// Arena-backed per-line transaction serialization (DESIGN.md §13).
//
// Every access runs through Protocol::withLine/releaseLine; the previous
// implementation cost an unordered_set probe per access plus, for each
// queued conflicting transaction, an unordered_map<Addr, deque<
// std::function>> node and a heap-boxed callable. This table replaces both
// with one open-addressing probe (FlatHash) and an intrusive waiter list
// whose nodes live in a growable slab, storing continuations in
// small-buffer InlineFn storage — the common acquire/release cycle
// allocates nothing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flat_hash.h"
#include "common/inline_fn.h"
#include "common/types.h"

namespace eecc {

class LineLockTable {
 public:
  /// Queued continuation. 64 inline bytes covers every withLine lambda the
  /// protocols queue (worst case: this + home + block + a NodeSet + the
  /// completion DoneFn); larger captures fall back to one heap allocation.
  using Waiter = InlineFn<void(), 64>;

  LineLockTable() : table_(1024) {}

  /// Takes the line lock if free. Returns false when already held.
  bool tryAcquire(Addr block) {
    if (table_.find(block) != nullptr) return false;
    table_.put(block, Entry{});
    return true;
  }

  /// Queues `fn` behind the current holder of `block` (which must be
  /// locked). FIFO: releases hand the lock to waiters in queue order.
  template <typename F>
  void enqueue(Addr block, F&& fn) {
    Entry* e = table_.find(block);
    EECC_CHECK_MSG(e != nullptr, "enqueue on an unlocked line");
    const std::uint32_t n = allocNode(std::forward<F>(fn));
    if (e->tail == kNone) {
      e->head = e->tail = n;
    } else {
      nodes_[e->tail].next = n;
      e->tail = n;
    }
  }

  /// Releases the lock held on `block`. When a waiter is queued, pops it
  /// into `*next`, keeps the lock held on its behalf, and returns true;
  /// otherwise frees the lock and returns false.
  bool release(Addr block, Waiter* next) {
    Entry* e = table_.find(block);
    EECC_CHECK_MSG(e != nullptr, "release of an unlocked line");
    if (e->head == kNone) {
      table_.erase(block);
      return false;
    }
    const std::uint32_t n = e->head;
    e->head = nodes_[n].next;
    if (e->head == kNone) e->tail = kNone;
    *next = std::move(nodes_[n].fn);
    freeNode(n);
    return true;
  }

  bool busy(Addr block) const { return table_.contains(block); }
  std::size_t heldCount() const { return table_.size(); }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Entry {
    std::uint32_t head = kNone;
    std::uint32_t tail = kNone;
  };

  struct Node {
    std::uint32_t next = kNone;
    Waiter fn;
  };

  template <typename F>
  std::uint32_t allocNode(F&& fn) {
    std::uint32_t n;
    if (freeHead_ != kNone) {
      n = freeHead_;
      freeHead_ = nodes_[n].next;
      nodes_[n].next = kNone;
      nodes_[n].fn = Waiter(std::forward<F>(fn));
    } else {
      n = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
      nodes_[n].fn = Waiter(std::forward<F>(fn));
    }
    return n;
  }

  void freeNode(std::uint32_t n) {
    nodes_[n].fn.reset();
    nodes_[n].next = freeHead_;
    freeHead_ = n;
  }

  FlatHash<Entry> table_;
  std::vector<Node> nodes_;
  std::uint32_t freeHead_ = kNone;
};

/// Per-line sharing-pattern classifier for Hybrid-Adapt (DESIGN.md §15).
///
/// Models the per-line predictor bits Hybrid-Adapt adds to each L1 entry
/// (storage_model.cpp charges them): a 2-bit saturating policy score, a
/// 2-bit remote-read counter and the last writer's tile id. Two antagonist
/// patterns move the score:
///
///  - producer-consumer — the same tile writes a line that other tiles
///    read between writes. Updates win: consumers keep hitting locally.
///    Seen as (same writer, copies remained, remote reads since the last
///    write) -> score += 1.
///  - migratory — the line hops writer to writer with no intervening
///    remote reads. Invalidation wins: updating copies nobody reads is
///    pure broadcast waste. Seen as (different writer, no remote reads)
///    -> score -= 1.
///
/// `updatePolicy` switches a line to write-update once the score reaches
/// the threshold (2 of 3); everything below stays invalidate, so the
/// protocol behaves like MOESI until a line proves itself.
class SharingClassifier {
 public:
  static constexpr std::uint8_t kMaxScore = 3;
  static constexpr std::uint8_t kThreshold = 2;
  static constexpr std::uint8_t kMaxReads = 3;

  /// A remote tile read the line (snooped read reached a copy holder, or
  /// a read miss was served). Saturates; cleared by the next write.
  void noteRemoteRead(Addr block) {
    State& s = state_.at(block);
    if (s.remoteReads < kMaxReads) s.remoteReads += 1;
  }

  /// A write to `block` by `writer` completed. `sharedSeen` reports
  /// whether any other tile held a copy during the write's broadcast.
  void noteWrite(Addr block, NodeId writer, bool sharedSeen) {
    State& s = state_.at(block);
    if (s.lastWriter != kInvalidNode) {
      if (sharedSeen && writer == s.lastWriter && s.remoteReads > 0) {
        if (s.score < kMaxScore) s.score += 1;  // producer-consumer
      } else if (writer != s.lastWriter && s.remoteReads == 0) {
        if (s.score > 0) s.score -= 1;  // migratory
      }
    }
    s.lastWriter = writer;
    s.remoteReads = 0;
  }

  /// True when the next write to `block` should broadcast updates.
  bool updatePolicy(Addr block) const {
    const State* s = state_.find(block);
    return s != nullptr && s->score >= kThreshold;
  }

  /// Test hook: the current saturating score (0 for untracked lines).
  std::uint8_t score(Addr block) const {
    const State* s = state_.find(block);
    return s == nullptr ? 0 : s->score;
  }

 private:
  struct State {
    NodeId lastWriter = kInvalidNode;
    std::uint8_t remoteReads = 0;
    std::uint8_t score = 0;
  };

  FlatHash<State> state_{1024};
};

}  // namespace eecc
