// Hierarchical server topology: tile-within-area, area-within-chip,
// chip-within-server (DESIGN.md §14).
//
// Every chip is an identical CmpConfig mesh with its own MeshTopology;
// the server glues `chips` of them together through gateway tiles and an
// inter-chip interconnect (scaleout/interchip.h). Global tile ids are
// chip-major: global = chip * tilesPerChip + local. The hierarchy is
// descriptive — coherence never crosses a chip boundary (each chip is its
// own domain; cross-chip interactions ride the memory path) — but it is
// the single source of truth for id mapping, gateway placement and the
// hop decomposition of a cross-chip path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "core/config.h"
#include "noc/mesh.h"
#include "scaleout/scaleout_config.h"

namespace eecc {

class HierarchicalTopology {
 public:
  /// A cross-server path, decomposed into its differently-priced parts:
  /// on-chip mesh hops (source tile to its gateway, destination gateway
  /// to the destination tile) and chip-to-chip crossings.
  struct Span {
    std::int32_t onChipHops = 0;
    std::int32_t chipCrossings = 0;
  };

  HierarchicalTopology(const CmpConfig& chip, std::uint32_t chips,
                       bool ring = false)
      : chip_(chip),
        mesh_(chip.meshWidth, chip.meshHeight),
        chips_(chips),
        ring_(ring),
        tilesPerChip_(static_cast<std::uint32_t>(chip.tiles())) {
    EECC_CHECK(chips_ >= 1);
    // Gateway: the tile in the middle of the chip's west edge — where a
    // SerDes macro would sit, one per chip, shared by all areas.
    gateway_ = mesh_.nodeAt({0, chip.meshHeight / 2});
  }

  std::uint32_t chips() const { return chips_; }
  std::uint32_t tilesPerChip() const { return tilesPerChip_; }
  std::uint32_t totalTiles() const { return chips_ * tilesPerChip_; }
  const MeshTopology& mesh() const { return mesh_; }
  const CmpConfig& chipConfig() const { return chip_; }

  // --- Id mapping (chip-major) ---
  std::int32_t chipOf(std::uint32_t global) const {
    return static_cast<std::int32_t>(global / tilesPerChip_);
  }
  NodeId localOf(std::uint32_t global) const {
    return static_cast<NodeId>(global % tilesPerChip_);
  }
  std::uint32_t globalOf(std::int32_t chip, NodeId local) const {
    return static_cast<std::uint32_t>(chip) * tilesPerChip_ +
           static_cast<std::uint32_t>(local);
  }
  /// Static chip area of a global tile — the middle level of the
  /// hierarchy; identical division on every chip.
  AreaId areaOf(std::uint32_t global) const {
    return chip_.areaOf(localOf(global));
  }

  /// The local tile hosting the chip's inter-chip interface.
  NodeId gatewayTile() const { return gateway_; }

  /// Chip-to-chip crossings: 1 between any distinct pair when fully
  /// connected, the ring distance on a ring.
  std::int32_t chipDistance(std::int32_t a, std::int32_t b) const {
    if (a == b) return 0;
    if (!ring_) return 1;
    const std::int32_t n = static_cast<std::int32_t>(chips_);
    const std::int32_t d = a > b ? a - b : b - a;
    return d < n - d ? d : n - d;
  }

  /// Path decomposition between two global tiles: same chip = pure mesh
  /// hops; cross chip = hops to the source gateway, the crossings, hops
  /// from the destination gateway.
  Span span(std::uint32_t srcGlobal, std::uint32_t dstGlobal) const {
    const std::int32_t sc = chipOf(srcGlobal);
    const std::int32_t dc = chipOf(dstGlobal);
    Span s;
    if (sc == dc) {
      s.onChipHops = mesh_.distance(localOf(srcGlobal), localOf(dstGlobal));
      return s;
    }
    s.onChipHops = mesh_.distance(localOf(srcGlobal), gateway_) +
                   mesh_.distance(gateway_, localOf(dstGlobal));
    s.chipCrossings = chipDistance(sc, dc);
    return s;
  }

 private:
  CmpConfig chip_;
  MeshTopology mesh_;
  std::uint32_t chips_;
  bool ring_;
  std::uint32_t tilesPerChip_;
  NodeId gateway_ = 0;
};

}  // namespace eecc
