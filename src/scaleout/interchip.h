// Inter-chip interconnect: the chip-crossing link of the scale-out server
// (DESIGN.md §14).
//
// Directed per-chip-pair channels with occupancy-based contention, the
// same shape as the on-chip NoC's link model but with its own latency,
// serialization (bandwidth) and energy-per-flit parameters
// (InterChipLinkConfig). Three traffic classes cross it:
//   * remote memory fetches — a miss to a page homed on another chip pays
//     the control-out / data-back round trip on top of DRAM latency
//     (Protocol::setRemoteMemory);
//   * migration bulk transfers — a VM's resident pages streamed to the
//     destination chip during live migration;
//   * nothing else: coherence never crosses a chip boundary (cross-chip
//     shared pages are read-only by construction; writes break the
//     sharing via copy-on-write onto the writer's chip).
//
// Every flit is attributed to a per-VM row exactly like the on-chip
// ledger: summing rowFlits over all rows reproduces stats().flits
// bit-for-bit (scaleout_test pins the decomposition).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/types.h"
#include "scaleout/scaleout_config.h"

namespace eecc {

struct InterChipStats {
  std::uint64_t messages = 0;
  std::uint64_t dataMessages = 0;
  std::uint64_t flits = 0;
  std::uint64_t flitHops = 0;  ///< flits × chip crossings (energy events).
  std::uint64_t remoteFetches = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migrationPages = 0;
  Accumulator latency;  ///< Entry-to-delivery cycles per message.
  Accumulator wait;     ///< Cycles spent waiting on a busy channel.

  void merge(const InterChipStats& o) {
    messages += o.messages;
    dataMessages += o.dataMessages;
    flits += o.flits;
    flitHops += o.flitHops;
    remoteFetches += o.remoteFetches;
    migrations += o.migrations;
    migrationPages += o.migrationPages;
    latency += o.latency;
    wait += o.wait;
  }
};

class InterChipLink {
 public:
  /// A migration streams its pages at this fabric occupancy — the bulk of
  /// the page body rides a DMA lane modeled only as energy/latency, but
  /// each page claims a few flits of the coherent channel (header +
  /// dirty-bitmap traffic), which is what contends with remote fetches.
  static constexpr std::uint32_t kMigrationFlitsPerPage = 8;

  /// `rows`: attribution rows (total VMs + shared + other), mirroring the
  /// on-chip ledger's row space.
  InterChipLink(std::uint32_t chips, const InterChipLinkConfig& cfg,
                std::size_t rows)
      : chips_(chips),
        cfg_(cfg),
        nextFree_(static_cast<std::size_t>(chips) * chips, 0),
        pairFlits_(static_cast<std::size_t>(chips) * chips, 0),
        rowFlits_(rows, 0),
        rowMessages_(rows, 0) {}

  std::uint32_t chips() const { return chips_; }
  const InterChipLinkConfig& config() const { return cfg_; }
  std::size_t rows() const { return rowFlits_.size(); }

  std::int32_t chipDistance(std::int32_t a, std::int32_t b) const {
    if (a == b) return 0;
    if (!cfg_.ring) return 1;
    const auto n = static_cast<std::int32_t>(chips_);
    const std::int32_t d = a > b ? a - b : b - a;
    return d < n - d ? d : n - d;
  }

  /// One message of `flits` flits from chip `src` to `dst` entering the
  /// channel at `now`; returns the delivery tick. The directed channel is
  /// busy for the serialization time, so later messages on the same pair
  /// queue behind it (stats().wait).
  Tick transfer(std::int32_t src, std::int32_t dst, std::uint32_t flits,
                Tick now, std::size_t row, bool data) {
    EECC_CHECK(src != dst && src >= 0 && dst >= 0);
    const std::int32_t hops = chipDistance(src, dst);
    Tick& free = nextFree_[pair(src, dst)];
    const Tick start = now > free ? now : free;
    const Tick serialize =
        cfg_.cyclesPerFlit * static_cast<Tick>(flits);
    free = start + serialize;
    const Tick arrive =
        start + serialize + cfg_.hopCycles * static_cast<Tick>(hops);
    stats_.messages += 1;
    if (data) stats_.dataMessages += 1;
    stats_.flits += flits;
    stats_.flitHops +=
        static_cast<std::uint64_t>(flits) * static_cast<std::uint64_t>(hops);
    stats_.wait.add(static_cast<double>(start - now));
    stats_.latency.add(static_cast<double>(arrive - now));
    pairFlits_[pair(src, dst)] += flits;
    if (row < rowFlits_.size()) {
      rowFlits_[row] += flits;
      rowMessages_[row] += 1;
    }
    return arrive;
  }

  /// Remote memory fetch: `reqFlits` of control out, `respFlits` of data
  /// back once the request lands. Returns the response's delivery tick
  /// (the caller adds DRAM latency between the legs itself by passing the
  /// controller-side `now`).
  Tick roundTrip(std::int32_t src, std::int32_t dst, std::uint32_t reqFlits,
                 std::uint32_t respFlits, Tick now, std::size_t row) {
    stats_.remoteFetches += 1;
    const Tick there = transfer(src, dst, reqFlits, now, row, false);
    return transfer(dst, src, respFlits, there, row, true);
  }

  /// Live-migration bulk transfer of `pages` pages; returns the tick the
  /// last page lands on the destination (the stop-and-copy point).
  Tick bulkTransfer(std::int32_t src, std::int32_t dst, std::uint64_t pages,
                    Tick now, std::size_t row) {
    stats_.migrations += 1;
    stats_.migrationPages += pages;
    const auto flits = static_cast<std::uint32_t>(
        pages * kMigrationFlitsPerPage);
    return transfer(src, dst, flits < 1 ? 1 : flits, now, row, true);
  }

  const InterChipStats& stats() const { return stats_; }
  std::uint64_t pairFlits(std::int32_t src, std::int32_t dst) const {
    return pairFlits_[pair(src, dst)];
  }
  std::uint64_t rowFlits(std::size_t row) const { return rowFlits_[row]; }
  std::uint64_t rowMessages(std::size_t row) const {
    return rowMessages_[row];
  }

  /// Clears the counters only; channel occupancy survives (warmup
  /// traffic carries into the measured window, as for the on-chip NoC).
  void resetStats() {
    stats_ = InterChipStats{};
    pairFlits_.assign(pairFlits_.size(), 0);
    rowFlits_.assign(rowFlits_.size(), 0);
    rowMessages_.assign(rowMessages_.size(), 0);
  }

 private:
  std::size_t pair(std::int32_t src, std::int32_t dst) const {
    return static_cast<std::size_t>(src) * chips_ +
           static_cast<std::size_t>(dst);
  }

  std::uint32_t chips_;
  InterChipLinkConfig cfg_;
  std::vector<Tick> nextFree_;  ///< Directed channel busy-until.
  std::vector<std::uint64_t> pairFlits_;
  std::vector<std::uint64_t> rowFlits_;
  std::vector<std::uint64_t> rowMessages_;
  InterChipStats stats_;
};

}  // namespace eecc
