// Server-wide workload: the multi-chip, churn-capable generalization of
// workload/workload.h (DESIGN.md §14).
//
// One ServerWorkload owns the whole server's physical memory image (a
// single PageManager, so deduplication spans chips) and every VM's
// threads; each chip's CmpSystem is fed through a thin ChipSource adapter
// that maps the chip's local tile ids onto the server's thread table.
// Unlike the static Workload, VMs here have a lifecycle: they boot into a
// (chip, slot) placement, shut down (their pages are unmapped and
// reclaimed), and live-migrate between chips — the thread objects move
// with the VM, carrying their RNG and reuse-history state, so a migrated
// VM's reference stream continues where it left off on the new chip.
//
// Page-to-chip homing: a page belongs to the chip of the VM that
// allocated it (first mapper for deduplicated content). Accesses from
// another chip — only possible for read-only server-deduplicated pages —
// pay the inter-chip round trip on the memory path. Copy-on-write always
// re-privatizes onto the writing VM's current chip, and migration
// re-homes the VM's own pages plus the content pages it is the sole
// remaining sharer of.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/config.h"
#include "vm/page_manager.h"
#include "workload/profile.h"
#include "workload/workload.h"
#include "workload/zipf.h"

namespace eecc {

class ServerWorkload {
 public:
  /// During a CoW storm the VM's dedup-write probability is floored here:
  /// a write-heavy guest phase dirtying its deduplicated pages en masse.
  static constexpr double kStormWriteFraction = 0.35;

  /// Boots `chips` copies of the consolidated chip: for every chip,
  /// `perVmOneChip[s]` boots into slot s. Slots partition the chip
  /// area-aligned (VmLayout::contiguous with perVmOneChip.size() slots);
  /// every chip has the same slot geometry.
  ServerWorkload(const CmpConfig& chipCfg, std::uint32_t chips,
                 std::vector<BenchmarkProfile> perVmOneChip,
                 std::uint64_t seed, bool dedupEnabled);

  // --- Geometry ---
  std::uint32_t chips() const { return chips_; }
  std::uint32_t slotsPerChip() const {
    return static_cast<std::uint32_t>(slotTiles_.size());
  }
  const std::vector<NodeId>& slotTiles(std::uint32_t slot) const {
    return slotTiles_[slot];
  }
  /// VM ids ever created (booted VMs get fresh ids; none are reused).
  std::uint32_t vmCount() const {
    return static_cast<std::uint32_t>(vms_.size());
  }

  // --- Lifecycle (called by VmLifecycle at churn boundaries) ---
  /// Boots a fresh VM into (chip, slot); allocates its memory image and
  /// pins one thread per slot tile. Returns the new VM id.
  VmId bootVm(const BenchmarkProfile& profile, std::int32_t chip,
              std::uint32_t slot);
  /// Shuts the VM down: threads unpinned, private pages released, content
  /// pages unmapped (freed when it was the last sharer).
  void shutdownVm(VmId vm);
  /// Pages a live migration must move: the VM's own pages plus content
  /// pages it is the sole remaining sharer of.
  std::uint64_t residentPages(VmId vm) const;
  /// Stop-and-copy completion: repins the VM's threads onto the
  /// destination slot (thread state travels — the streams follow the VM)
  /// and re-homes its pages to the destination chip.
  void migrateVm(VmId vm, std::int32_t dstChip, std::uint32_t dstSlot);
  /// Begins/ends a dedup-break CoW storm on the VM (write-heavy phase).
  void setStormWrites(VmId vm, bool on);

  // --- State queries ---
  bool vmRunning(VmId vm) const { return vmAt(vm).running; }
  std::int32_t chipOf(VmId vm) const { return vmAt(vm).chip; }
  std::uint32_t slotOf(VmId vm) const { return vmAt(vm).slot; }
  const BenchmarkProfile& profileOf(VmId vm) const {
    return vmAt(vm).profile;
  }
  /// Operations generated for the VM so far (across boots and chips).
  std::uint64_t opsGenerated(VmId vm) const { return vmAt(vm).opsGen; }
  VmId vmAtTile(std::int32_t chip, NodeId local) const {
    const Thread* t = threadAt(chip, local);
    return t == nullptr ? kInvalidVm : t->vmId;
  }

  /// Owning VM of a physical page (kVmShared for deduplicated pages,
  /// kInvalidVm for unknown/reclaimed) — backs each chip's ledger.
  VmId vmOfPage(Addr page) const {
    auto it = pageVm_.find(pageAddr(page));
    return it == pageVm_.end() ? kInvalidVm : it->second;
  }
  /// Home chip of an address's page; -1 when unknown (treated as local).
  std::int32_t homeChipOf(Addr addr) const {
    auto it = pageChip_.find(pageAddr(addr));
    return it == pageChip_.end() ? -1 : it->second;
  }

  const PageManager& pages() const { return pages_; }

  /// The chip's current VM-to-tile assignment with *global* VM ids,
  /// padded to `numVms` rows — the layout each chip's AttributionLedger
  /// is built from (and retiled to after churn).
  VmLayout chipLayout(std::int32_t chip, std::uint32_t numVms) const;

  // --- Per-chip OpSource face (used by ChipSource) ---
  bool tileActive(std::int32_t chip, NodeId local) const {
    return threadAt(chip, local) != nullptr;
  }
  MemOp next(std::int32_t chip, NodeId local);

 private:
  struct Vm;

  struct Thread {
    Vm* vm = nullptr;
    VmId vmId = kInvalidVm;
    std::uint32_t threadIdx = 0;
    Rng rng;
    std::vector<Addr> recentBlocks;
    std::uint32_t recentPos = 0;
    std::vector<Addr> historyBlocks;
    std::uint32_t historyPos = 0;
  };

  struct Vm {
    BenchmarkProfile profile;
    VmId id = kInvalidVm;
    std::int32_t chip = -1;
    std::uint32_t slot = 0;
    bool running = false;
    bool storm = false;
    std::uint64_t opsGen = 0;
    std::vector<std::vector<Addr>> privatePages;  // [thread][page]
    std::vector<Addr> sharedPages;
    std::vector<std::uint64_t> dedupKeys;
    std::vector<Addr> dedupShared;  ///< Shared translation at map time.
    std::vector<Addr> dedupView;    ///< Current view (CoW updates).
    std::vector<Addr> ownPages;     ///< private + shared + CoW copies.
    std::unique_ptr<ZipfSampler> privateZipf;
    std::unique_ptr<ZipfSampler> sharedZipf;
    std::unique_ptr<ZipfSampler> dedupZipf;
    std::vector<std::unique_ptr<Thread>> threads;
  };

  Vm& vmAt(VmId vm) {
    EECC_CHECK(vm >= 0 && static_cast<std::size_t>(vm) < vms_.size());
    return *vms_[static_cast<std::size_t>(vm)];
  }
  const Vm& vmAt(VmId vm) const {
    EECC_CHECK(vm >= 0 && static_cast<std::size_t>(vm) < vms_.size());
    return *vms_[static_cast<std::size_t>(vm)];
  }
  Thread* threadAt(std::int32_t chip, NodeId local) const {
    return threadOfTile_[static_cast<std::size_t>(chip)]
                        [static_cast<std::size_t>(local)];
  }

  void pinThreads(Vm& vm, std::int32_t chip, std::uint32_t slot);
  void unpinThreads(Vm& vm);
  Addr pickBlock(Thread& t, Addr page, bool shared);
  Addr remember(Thread& t, Addr block, bool shared);
  MemOp genFresh(Thread& t);

  CmpConfig cfg_;
  std::uint32_t chips_;
  std::uint64_t seed_;
  bool dedupEnabled_;
  PageManager pages_;
  std::vector<std::vector<NodeId>> slotTiles_;  // [slot] -> local tiles
  std::unordered_set<Addr> sharedDedupPages_;
  std::unordered_map<Addr, VmId> pageVm_;
  std::unordered_map<Addr, std::int32_t> pageChip_;
  std::vector<std::unique_ptr<Vm>> vms_;
  // [chip][local] -> pinned thread (null = idle tile).
  std::vector<std::vector<Thread*>> threadOfTile_;
};

/// Per-chip OpSource adapter over the server workload.
class ChipSource final : public OpSource {
 public:
  ChipSource(ServerWorkload* server, std::int32_t chip)
      : server_(server), chip_(chip) {}

  bool tileActive(NodeId tile) const override {
    return server_->tileActive(chip_, tile);
  }
  MemOp next(NodeId tile) override { return server_->next(chip_, tile); }

 private:
  ServerWorkload* server_;
  std::int32_t chip_;
};

}  // namespace eecc
