#include "scaleout/server_workload.h"

#include <algorithm>

namespace eecc {

using workload_detail::contentKey;
using workload_detail::sampleGap;

ServerWorkload::ServerWorkload(const CmpConfig& chipCfg, std::uint32_t chips,
                               std::vector<BenchmarkProfile> perVmOneChip,
                               std::uint64_t seed, bool dedupEnabled)
    : cfg_(chipCfg),
      chips_(chips),
      seed_(seed),
      dedupEnabled_(dedupEnabled) {
  EECC_CHECK(chips_ >= 1 && !perVmOneChip.empty());
  const auto slots = static_cast<std::uint32_t>(perVmOneChip.size());
  // Area-aligned slot geometry, identical on every chip: for the default
  // 8x8 / 4-area chip with 4 VMs these are the Figure-6-left quadrants.
  const VmLayout slotLayout = VmLayout::contiguous(cfg_, slots);
  slotTiles_.resize(slots);
  for (std::uint32_t s = 0; s < slots; ++s)
    slotTiles_[s] = slotLayout.tilesOfVm(static_cast<VmId>(s));
  threadOfTile_.assign(
      chips_, std::vector<Thread*>(static_cast<std::size_t>(cfg_.tiles()),
                                   nullptr));
  // Initial consolidation: every chip boots the same per-slot benchmark
  // mix; VM ids are chip-major (chip c, slot s -> c*slots + s).
  for (std::uint32_t c = 0; c < chips_; ++c)
    for (std::uint32_t s = 0; s < slots; ++s)
      bootVm(perVmOneChip[s], static_cast<std::int32_t>(c), s);
}

VmId ServerWorkload::bootVm(const BenchmarkProfile& profile,
                            std::int32_t chip, std::uint32_t slot) {
  EECC_CHECK(chip >= 0 && static_cast<std::uint32_t>(chip) < chips_);
  EECC_CHECK(slot < slotsPerChip());
  auto vmPtr = std::make_unique<Vm>();
  Vm& vm = *vmPtr;
  vm.profile = profile;
  vm.id = static_cast<VmId>(vms_.size());
  const BenchmarkProfile& p = vm.profile;
  const auto nThreads =
      static_cast<std::uint32_t>(slotTiles_[slot].size());

  vm.privatePages.resize(nThreads);
  for (std::uint32_t t = 0; t < nThreads; ++t)
    for (std::uint64_t i = 0; i < p.privatePagesPerThread; ++i) {
      const Addr page = pages_.allocPrivatePage();
      vm.privatePages[t].push_back(page);
      vm.ownPages.push_back(page);
      pageVm_.emplace(page, vm.id);
      pageChip_.emplace(page, chip);
    }

  for (std::uint64_t i = 0; i < p.vmSharedPages; ++i) {
    const Addr page = pages_.allocPrivatePage();
    vm.sharedPages.push_back(page);
    vm.ownPages.push_back(page);
    pageVm_.emplace(page, vm.id);
    pageChip_.emplace(page, chip);
  }

  // Deduplicated pool, sized from the Table IV target exactly like the
  // single-chip Workload. The content space is server-wide: "os" pages
  // dedup across every VM on every chip, benchmark pages across
  // same-benchmark VMs — the page's home chip is its first mapper's.
  const std::uint64_t dedup = Workload::dedupPagesFor(p, 4);
  const auto osPages = static_cast<std::uint64_t>(
      p.osDedupFraction * static_cast<double>(dedup));
  for (std::uint64_t i = 0; i < dedup; ++i) {
    const std::uint64_t key = i < osPages
                                  ? contentKey("os", i)
                                  : contentKey(p.name, i - osPages);
    vm.dedupKeys.push_back(key);
    Addr page;
    if (dedupEnabled_) {
      page = pages_.mapContent(key, vm.id);
      sharedDedupPages_.insert(page);
      pageVm_.emplace(page, kVmShared);
      pageChip_.emplace(page, chip);  // keeps the first mapper's chip
    } else {
      page = pages_.allocPrivatePage();
      vm.ownPages.push_back(page);
      pageVm_.emplace(page, vm.id);
      pageChip_.emplace(page, chip);
    }
    vm.dedupShared.push_back(page);
    vm.dedupView.push_back(page);
  }

  vm.privateZipf = std::make_unique<ZipfSampler>(
      std::max<std::uint64_t>(1, p.privatePagesPerThread), p.zipfAlpha);
  vm.sharedZipf = std::make_unique<ZipfSampler>(
      std::max<std::uint64_t>(1, p.vmSharedPages), p.zipfAlpha);
  vm.dedupZipf = std::make_unique<ZipfSampler>(
      std::max<std::uint64_t>(1, dedup),
      p.dedupZipfAlpha >= 0 ? p.dedupZipfAlpha : p.zipfAlpha);

  for (std::uint32_t t = 0; t < nThreads; ++t) {
    auto thread = std::make_unique<Thread>();
    thread->vm = &vm;
    thread->vmId = vm.id;
    thread->threadIdx = t;
    // Same stream-identity formula as the single-chip Workload; VM ids
    // are never reused, so every boot gets distinct streams.
    thread->rng.reseed(seed_ * 1000003ULL +
                       static_cast<std::uint64_t>(vm.id) * 131ULL + t);
    thread->recentBlocks.assign(p.reuseWindow, 0);
    if (p.historyReuseProb > 0.0)
      thread->historyBlocks.assign(p.historyWindow, 0);
    vm.threads.push_back(std::move(thread));
  }

  vms_.push_back(std::move(vmPtr));
  Vm& stored = *vms_.back();
  for (auto& t : stored.threads) t->vm = &stored;
  pinThreads(stored, chip, slot);
  stored.running = true;
  return stored.id;
}

void ServerWorkload::pinThreads(Vm& vm, std::int32_t chip,
                                std::uint32_t slot) {
  const std::vector<NodeId>& tiles = slotTiles_[slot];
  EECC_CHECK(tiles.size() == vm.threads.size());
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    Thread*& cell = threadOfTile_[static_cast<std::size_t>(chip)]
                                 [static_cast<std::size_t>(tiles[t])];
    EECC_CHECK_MSG(cell == nullptr, "slot already occupied");
    cell = vm.threads[t].get();
  }
  vm.chip = chip;
  vm.slot = slot;
}

void ServerWorkload::unpinThreads(Vm& vm) {
  const std::vector<NodeId>& tiles = slotTiles_[vm.slot];
  for (const NodeId tile : tiles) {
    Thread*& cell = threadOfTile_[static_cast<std::size_t>(vm.chip)]
                                 [static_cast<std::size_t>(tile)];
    if (cell != nullptr && cell->vmId == vm.id) cell = nullptr;
  }
}

void ServerWorkload::shutdownVm(VmId id) {
  Vm& vm = vmAt(id);
  EECC_CHECK_MSG(vm.running, "shutdown of a VM that is not running");
  unpinThreads(vm);
  vm.running = false;
  vm.storm = false;
  // Release the VM's own pages (private pools, intra-VM shared pool and
  // any CoW copies it accumulated)...
  for (const Addr page : vm.ownPages) {
    pageVm_.erase(page);
    pageChip_.erase(page);
  }
  // ...then unmap its content pages. CoW copies were already released
  // page-accounting-wise by reclaimVm (their cow entries), so only the
  // non-CoW own pages go through releasePrivatePage.
  std::unordered_set<Addr> cowPages;
  for (std::size_t i = 0; i < vm.dedupKeys.size(); ++i)
    if (vm.dedupView[i] != vm.dedupShared[i])
      cowPages.insert(vm.dedupView[i]);
  for (const Addr page : vm.ownPages)
    if (!cowPages.contains(page)) pages_.releasePrivatePage(page);
  pages_.reclaimVm(id);
  // Shared pages the VM was the last sharer of are gone now; scrub the
  // ownership maps of any key nobody shares anymore.
  for (std::size_t i = 0; i < vm.dedupKeys.size(); ++i) {
    if (!dedupEnabled_) break;
    if (pages_.sharerCount(vm.dedupKeys[i]) == 0) {
      const Addr page = vm.dedupShared[i];
      sharedDedupPages_.erase(page);
      pageVm_.erase(page);
      pageChip_.erase(page);
    }
  }
  vm.ownPages.clear();
  vm.threads.clear();
}

std::uint64_t ServerWorkload::residentPages(VmId id) const {
  const Vm& vm = vmAt(id);
  std::uint64_t pages = vm.ownPages.size();
  if (dedupEnabled_)
    for (const std::uint64_t key : vm.dedupKeys)
      if (pages_.soleSharer(key) == id) pages += 1;
  return pages;
}

void ServerWorkload::migrateVm(VmId id, std::int32_t dstChip,
                               std::uint32_t dstSlot) {
  Vm& vm = vmAt(id);
  EECC_CHECK_MSG(vm.running, "migration of a VM that is not running");
  EECC_CHECK(dstChip >= 0 && static_cast<std::uint32_t>(dstChip) < chips_);
  unpinThreads(vm);
  // The VM's own pages follow it; content pages only when it is the sole
  // remaining sharer (otherwise the page stays where its other sharers
  // still read it and this VM keeps fetching it remotely).
  for (const Addr page : vm.ownPages) pageChip_[page] = dstChip;
  if (dedupEnabled_)
    for (std::size_t i = 0; i < vm.dedupKeys.size(); ++i)
      if (pages_.soleSharer(vm.dedupKeys[i]) == id)
        pageChip_[vm.dedupShared[i]] = dstChip;
  pinThreads(vm, dstChip, dstSlot);
}

void ServerWorkload::setStormWrites(VmId id, bool on) {
  vmAt(id).storm = on;
}

VmLayout ServerWorkload::chipLayout(std::int32_t chip,
                                    std::uint32_t numVms) const {
  VmLayout layout;
  layout.numVms = numVms;
  layout.vmOfTile.assign(static_cast<std::size_t>(cfg_.tiles()),
                         kInvalidVm);
  for (NodeId t = 0; t < cfg_.tiles(); ++t)
    layout.vmOfTile[static_cast<std::size_t>(t)] = vmAtTile(chip, t);
  return layout;
}

Addr ServerWorkload::pickBlock(Thread& t, Addr page, bool shared) {
  const Addr block =
      page + (t.rng.below(kPageBytes / kBlockBytes) << kBlockOffsetBits);
  return remember(t, block, shared);
}

Addr ServerWorkload::remember(Thread& t, Addr block, bool shared) {
  if (!t.recentBlocks.empty()) {
    t.recentBlocks[t.recentPos] = block;
    t.recentPos = (t.recentPos + 1) %
                  static_cast<std::uint32_t>(t.recentBlocks.size());
  }
  if (shared && !t.historyBlocks.empty()) {
    t.historyBlocks[t.historyPos] = block;
    t.historyPos = (t.historyPos + 1) %
                   static_cast<std::uint32_t>(t.historyBlocks.size());
  }
  return block;
}

MemOp ServerWorkload::genFresh(Thread& t) {
  Vm& vm = *t.vm;
  const BenchmarkProfile& p = vm.profile;
  MemOp op;
  op.computeCycles = sampleGap(t.rng, p.meanGapCycles);

  const double u = t.rng.uniform();
  if (u < p.privateAccessFraction || vm.dedupView.empty()) {
    auto& pool = vm.privatePages[t.threadIdx %
                                 static_cast<std::uint32_t>(
                                     vm.privatePages.size())];
    const Addr page = pool[vm.privateZipf->sample(t.rng) % pool.size()];
    op.addr = pickBlock(t, page, false);
    op.type = t.rng.chance(p.privateWriteFraction) ? AccessType::Write
                                                   : AccessType::Read;
  } else if (u < p.privateAccessFraction + p.vmSharedAccessFraction &&
             !vm.sharedPages.empty()) {
    const Addr page =
        vm.sharedPages[vm.sharedZipf->sample(t.rng) % vm.sharedPages.size()];
    op.addr = pickBlock(t, page, true);
    op.type = t.rng.chance(p.sharedWriteFraction) ? AccessType::Write
                                                  : AccessType::Read;
  } else {
    // Deduplicated inter-VM data, as in Workload::genFresh — except that
    // a CoW storm floors the write probability, modeling a write-heavy
    // guest phase that breaks its deduplicated sharing en masse.
    const double writeFrac =
        vm.storm ? std::max(p.dedupWriteFraction, kStormWriteFraction)
                 : p.dedupWriteFraction;
    const std::size_t slot =
        vm.dedupZipf->sample(t.rng) % vm.dedupView.size();
    if (t.rng.chance(writeFrac)) {
      Addr target;
      if (dedupEnabled_) {
        target = pages_.copyOnWrite(vm.dedupKeys[slot], t.vmId);
        if (target != vm.dedupView[slot]) {
          // Fresh CoW copy: private to the writing VM, homed on its
          // *current* chip (a storm after migration re-privatizes pages
          // onto the destination).
          pageVm_.insert_or_assign(target, t.vmId);
          pageChip_.insert_or_assign(target, vm.chip);
          vm.ownPages.push_back(target);
        }
      } else {
        target = vm.dedupView[slot];
      }
      vm.dedupView[slot] = target;
      op.addr = pickBlock(t, target, false);
      op.type = AccessType::Write;
    } else {
      op.addr = pickBlock(t, vm.dedupView[slot], true);
      op.type = AccessType::Read;
    }
  }
  return op;
}

MemOp ServerWorkload::next(std::int32_t chip, NodeId local) {
  Thread* t = threadAt(chip, local);
  EECC_CHECK_MSG(t != nullptr, "no thread pinned to this tile");
  const BenchmarkProfile& p = t->vm->profile;
  t->vm->opsGen += 1;

  if (!t->historyBlocks.empty() && t->rng.chance(p.historyReuseProb)) {
    const Addr block =
        t->historyBlocks[t->rng.below(t->historyBlocks.size())];
    if (block != 0) {
      MemOp op;
      op.computeCycles = sampleGap(t->rng, p.meanGapCycles);
      op.addr = remember(*t, block, true);
      op.type = AccessType::Read;
      return op;
    }
  }
  if (!t->recentBlocks.empty() && t->recentBlocks[0] != 0 &&
      t->rng.chance(p.blockReuseProb)) {
    MemOp op;
    op.computeCycles = sampleGap(t->rng, p.meanGapCycles);
    const Addr block =
        t->recentBlocks[t->rng.below(t->recentBlocks.size())];
    if (block != 0) {
      op.addr = block;
      op.type = t->rng.chance(0.2 * p.privateWriteFraction)
                    ? AccessType::Write
                    : AccessType::Read;
      if (op.type == AccessType::Write &&
          sharedDedupPages_.contains(pageAddr(block)))
        op.type = AccessType::Read;
      return op;
    }
  }
  return genFresh(*t);
}

}  // namespace eecc
