#include "scaleout/vm_lifecycle.h"

#include <algorithm>
#include <stdexcept>

namespace eecc {

namespace {

BenchmarkProfile profileByName(const std::string& name) {
  if (name == "apache") return profiles::apache();
  if (name == "jbb") return profiles::jbb();
  if (name == "radix") return profiles::radix();
  if (name == "lu") return profiles::lu();
  if (name == "volrend") return profiles::volrend();
  if (name == "tomcatv") return profiles::tomcatv();
  throw std::runtime_error("churn: unknown profile '" + name + "'");
}

std::vector<std::string> splitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::uint64_t parseU64(const std::string& s, const std::string& what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("churn: bad " + what + " '" + s + "'");
  }
}

/// `key=value` options after the first `:`; returns pairs in order.
std::vector<std::pair<std::string, std::string>> parseOpts(
    const std::vector<std::string>& parts, std::size_t from,
    const std::string& token) {
  std::vector<std::pair<std::string, std::string>> opts;
  for (std::size_t i = from; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::runtime_error("churn: bad option '" + parts[i] +
                               "' in '" + token + "'");
    opts.emplace_back(parts[i].substr(0, eq), parts[i].substr(eq + 1));
  }
  return opts;
}

}  // namespace

ChurnSchedule ChurnSchedule::parse(const std::string& spec,
                                   std::uint64_t seed, Tick windowCycles) {
  ChurnSchedule schedule;
  // Distinct stream from the workload generators: churn synthesis must
  // not perturb the reference streams of an otherwise identical run.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5ca1ab1eULL);

  for (const std::string& token : splitOn(spec, ';')) {
    if (token.empty()) continue;
    const std::vector<std::string> parts = splitOn(token, ':');

    if (parts[0] == "random") {
      std::uint64_t n = 0;
      Tick until = windowCycles;
      for (const auto& [key, value] : parseOpts(parts, 1, token)) {
        if (key == "events")
          n = parseU64(value, "event count");
        else if (key == "until")
          until = parseU64(value, "tick");
        else
          throw std::runtime_error("churn: unknown option '" + key +
                                   "' in '" + token + "'");
      }
      if (n == 0 || until == 0)
        throw std::runtime_error("churn: random needs events>0: '" +
                                 token + "'");
      for (std::uint64_t i = 0; i < n; ++i) {
        ChurnEvent ev;
        ev.at = rng.below(until);
        const std::uint64_t k = rng.below(100);
        if (k < 30)
          ev.kind = ChurnEvent::Kind::Boot;
        else if (k < 55)
          ev.kind = ChurnEvent::Kind::Shutdown;
        else if (k < 80)
          ev.kind = ChurnEvent::Kind::Migrate;
        else
          ev.kind = ChurnEvent::Kind::Storm;
        schedule.events.push_back(ev);
      }
      continue;
    }

    const std::size_t at = parts[0].find('@');
    if (at == std::string::npos)
      throw std::runtime_error("churn: expected kind@tick in '" + token +
                               "'");
    const std::string kind = parts[0].substr(0, at);
    ChurnEvent ev;
    ev.at = parseU64(parts[0].substr(at + 1), "tick");
    const auto opts = parseOpts(parts, 1, token);
    auto reject = [&](const std::string& key) {
      throw std::runtime_error("churn: unknown option '" + key +
                               "' for " + kind + " in '" + token + "'");
    };

    if (kind == "boot") {
      ev.kind = ChurnEvent::Kind::Boot;
      for (const auto& [key, value] : opts) {
        if (key == "chip")
          ev.chip = static_cast<std::int32_t>(parseU64(value, "chip"));
        else if (key == "profile")
          ev.profile = value;
        else
          reject(key);
      }
      if (!ev.profile.empty()) profileByName(ev.profile);  // validate now
    } else if (kind == "shutdown") {
      ev.kind = ChurnEvent::Kind::Shutdown;
      for (const auto& [key, value] : opts) {
        if (key == "vm")
          ev.vm = static_cast<VmId>(parseU64(value, "vm"));
        else
          reject(key);
      }
    } else if (kind == "migrate") {
      ev.kind = ChurnEvent::Kind::Migrate;
      for (const auto& [key, value] : opts) {
        if (key == "vm")
          ev.vm = static_cast<VmId>(parseU64(value, "vm"));
        else if (key == "to")
          ev.chip = static_cast<std::int32_t>(parseU64(value, "chip"));
        else
          reject(key);
      }
    } else if (kind == "storm") {
      ev.kind = ChurnEvent::Kind::Storm;
      for (const auto& [key, value] : opts) {
        if (key == "vm")
          ev.vm = static_cast<VmId>(parseU64(value, "vm"));
        else if (key == "len")
          ev.stormLen = parseU64(value, "storm length");
        else
          reject(key);
      }
      if (ev.stormLen == 0)
        throw std::runtime_error("churn: storm len must be > 0: '" +
                                 token + "'");
    } else {
      throw std::runtime_error("churn: unknown event kind '" + kind +
                               "' in '" + token + "'");
    }
    schedule.events.push_back(ev);
  }

  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at < b.at;
                   });
  return schedule;
}

std::uint32_t ChurnSchedule::bootEvents() const {
  std::uint32_t n = 0;
  for (const ChurnEvent& ev : events)
    if (ev.kind == ChurnEvent::Kind::Boot) ++n;
  return n;
}

VmLifecycle::VmLifecycle(ServerWorkload* server, InterChipLink* link,
                         ChurnSchedule schedule, Tick windowStart,
                         Tick windowEnd, std::uint64_t seed,
                         std::vector<BenchmarkProfile> bootProfiles)
    : server_(server),
      link_(link),
      events_(std::move(schedule.events)),
      windowStart_(windowStart),
      windowEnd_(windowEnd),
      rng_(seed * 0x9e3779b97f4a7c15ULL + 0x5ca1ab1eULL + 1),
      bootProfiles_(std::move(bootProfiles)) {
  EECC_CHECK(!bootProfiles_.empty());
  slotVm_.assign(server_->chips(),
                 std::vector<VmId>(server_->slotsPerChip(), kInvalidVm));
  // The initial consolidation occupies every slot (chip-major ids).
  for (VmId vm = 0; static_cast<std::uint32_t>(vm) < server_->vmCount();
       ++vm)
    slotVm_[static_cast<std::size_t>(server_->chipOf(vm))]
           [server_->slotOf(vm)] = vm;
}

std::int32_t VmLifecycle::freeSlotOn(std::int32_t chip) const {
  const auto& slots = slotVm_[static_cast<std::size_t>(chip)];
  for (std::uint32_t s = 0; s < slots.size(); ++s)
    if (slots[s] == kInvalidVm) return static_cast<std::int32_t>(s);
  return -1;
}

std::int32_t VmLifecycle::autoBootChip() const {
  std::int32_t best = -1;
  std::size_t bestFree = 0;
  for (std::size_t c = 0; c < slotVm_.size(); ++c) {
    const auto free = static_cast<std::size_t>(
        std::count(slotVm_[c].begin(), slotVm_[c].end(), kInvalidVm));
    if (free > bestFree) {
      bestFree = free;
      best = static_cast<std::int32_t>(c);
    }
  }
  return best;
}

bool VmLifecycle::migrationPending(VmId vm) const {
  for (const PendingMigration& m : pendingMigrations_)
    if (m.vm == vm) return true;
  return false;
}

VmId VmLifecycle::pickRunningVm() {
  std::vector<VmId> candidates;
  for (VmId vm = 0; static_cast<std::uint32_t>(vm) < server_->vmCount();
       ++vm)
    if (server_->vmRunning(vm) && !migrationPending(vm))
      candidates.push_back(vm);
  if (candidates.empty()) return kInvalidVm;
  return candidates[rng_.below(candidates.size())];
}

Tick VmLifecycle::nextBoundary(Tick after) const {
  Tick best = kTickMax;
  if (nextEvent_ < events_.size()) {
    const Tick t = windowStart_ + events_[nextEvent_].at;
    const Tick clamped = t > after ? t : after + 1;
    if (clamped < best) best = clamped;
  }
  for (const PendingMigration& m : pendingMigrations_)
    if (m.done > after && m.done < best) best = m.done;
  for (const PendingStormEnd& s : pendingStormEnds_)
    if (s.at > after && s.at < best) best = s.at;
  return best;
}

std::uint64_t VmLifecycle::applyDue(Tick now) {
  const std::uint64_t before = applied_;

  // 1. Migration completions (stop-and-copy points), in delivery order.
  std::vector<PendingMigration> due;
  for (auto it = pendingMigrations_.begin();
       it != pendingMigrations_.end();) {
    if (it->done <= now) {
      due.push_back(*it);
      it = pendingMigrations_.erase(it);
    } else {
      ++it;
    }
  }
  std::stable_sort(due.begin(), due.end(),
                   [](const PendingMigration& a, const PendingMigration& b) {
                     return a.done < b.done;
                   });
  for (const PendingMigration& m : due) completeMigration(m);

  // 2. Storm ends.
  for (auto it = pendingStormEnds_.begin();
       it != pendingStormEnds_.end();) {
    if (it->at <= now) {
      if (server_->vmRunning(it->vm)) {
        server_->setStormWrites(it->vm, false);
        ++applied_;
      }
      it = pendingStormEnds_.erase(it);
    } else {
      ++it;
    }
  }

  // 3. Scheduled events.
  while (nextEvent_ < events_.size() &&
         windowStart_ + events_[nextEvent_].at <= now)
    applyEvent(events_[nextEvent_++], now);

  return applied_ - before;
}

void VmLifecycle::completeMigration(const PendingMigration& m) {
  if (!server_->vmRunning(m.vm)) {
    // Shut down while its pages were in flight: release the reservation.
    slotVm_[static_cast<std::size_t>(m.dstChip)][m.dstSlot] = kInvalidVm;
    ++skipped_;
    return;
  }
  const auto srcChip = static_cast<std::size_t>(server_->chipOf(m.vm));
  slotVm_[srcChip][server_->slotOf(m.vm)] = kInvalidVm;
  server_->migrateVm(m.vm, m.dstChip, m.dstSlot);
  ++migrationsCompleted_;
  ++applied_;
}

void VmLifecycle::applyEvent(const ChurnEvent& ev, Tick now) {
  switch (ev.kind) {
    case ChurnEvent::Kind::Boot: {
      const std::int32_t chip = ev.chip >= 0 ? ev.chip : autoBootChip();
      if (chip < 0 ||
          static_cast<std::uint32_t>(chip) >= server_->chips()) {
        ++skipped_;  // server full / bad chip
        return;
      }
      const std::int32_t slot = freeSlotOn(chip);
      if (slot < 0) {
        ++skipped_;  // chip full
        return;
      }
      const BenchmarkProfile profile =
          ev.profile.empty()
              ? bootProfiles_[bootCount_ % bootProfiles_.size()]
              : profileByName(ev.profile);
      ++bootCount_;
      const VmId vm = server_->bootVm(
          profile, chip, static_cast<std::uint32_t>(slot));
      slotVm_[static_cast<std::size_t>(chip)]
             [static_cast<std::uint32_t>(slot)] = vm;
      ++boots_;
      ++applied_;
      return;
    }
    case ChurnEvent::Kind::Shutdown: {
      const VmId vm = ev.vm != kInvalidVm ? ev.vm : pickRunningVm();
      if (vm == kInvalidVm ||
          static_cast<std::uint32_t>(vm) >= server_->vmCount() ||
          !server_->vmRunning(vm)) {
        ++skipped_;
        return;
      }
      slotVm_[static_cast<std::size_t>(server_->chipOf(vm))]
             [server_->slotOf(vm)] = kInvalidVm;
      server_->shutdownVm(vm);
      ++shutdowns_;
      ++applied_;
      return;
    }
    case ChurnEvent::Kind::Migrate: {
      // A random pick only considers VMs with a feasible destination (a
      // different chip with a free slot) — on a mostly-full server an
      // unconstrained pick would skip most migrations.
      VmId vm = ev.vm;
      if (vm == kInvalidVm) {
        std::vector<VmId> movable;
        for (VmId v = 0;
             static_cast<std::uint32_t>(v) < server_->vmCount(); ++v) {
          if (!server_->vmRunning(v) || migrationPending(v)) continue;
          for (std::int32_t c = 0;
               static_cast<std::uint32_t>(c) < server_->chips(); ++c)
            if (c != server_->chipOf(v) && freeSlotOn(c) >= 0) {
              movable.push_back(v);
              break;
            }
        }
        if (!movable.empty()) vm = movable[rng_.below(movable.size())];
      }
      if (vm == kInvalidVm ||
          static_cast<std::uint32_t>(vm) >= server_->vmCount() ||
          !server_->vmRunning(vm) || migrationPending(vm)) {
        ++skipped_;
        return;
      }
      const std::int32_t src = server_->chipOf(vm);
      std::int32_t dst = ev.chip;
      if (dst < 0) {
        std::vector<std::int32_t> candidates;
        for (std::int32_t c = 0;
             static_cast<std::uint32_t>(c) < server_->chips(); ++c)
          if (c != src && freeSlotOn(c) >= 0) candidates.push_back(c);
        if (candidates.empty()) {
          ++skipped_;
          return;
        }
        dst = candidates[rng_.below(candidates.size())];
      }
      if (dst == src ||
          static_cast<std::uint32_t>(dst) >= server_->chips()) {
        ++skipped_;
        return;
      }
      const std::int32_t slot = freeSlotOn(dst);
      if (slot < 0) {
        ++skipped_;
        return;
      }
      // Reserve the destination slot and stream the pages; completion is
      // the link's delivery tick (a future boundary). Migration traffic
      // is attributed to the migrating VM's link row.
      slotVm_[static_cast<std::size_t>(dst)]
             [static_cast<std::uint32_t>(slot)] = vm;
      const Tick done = link_->bulkTransfer(
          src, dst, server_->residentPages(vm), now,
          static_cast<std::size_t>(vm));
      pendingMigrations_.push_back(
          {done, vm, dst, static_cast<std::uint32_t>(slot)});
      ++migrationsStarted_;
      ++applied_;
      return;
    }
    case ChurnEvent::Kind::Storm: {
      const VmId vm = ev.vm != kInvalidVm ? ev.vm : pickRunningVm();
      if (vm == kInvalidVm ||
          static_cast<std::uint32_t>(vm) >= server_->vmCount() ||
          !server_->vmRunning(vm)) {
        ++skipped_;
        return;
      }
      server_->setStormWrites(vm, true);
      pendingStormEnds_.push_back({now + ev.stormLen, vm});
      ++storms_;
      ++applied_;
      return;
    }
  }
}

}  // namespace eecc
