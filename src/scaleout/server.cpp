#include "scaleout/server.h"

#include <algorithm>
#include <string>

#include "check/monitor.h"
#include "obs/ledger.h"
#include "obs/system_metrics.h"
#include "workload/profile.h"

namespace eecc {

void mergeProtocolStats(ProtocolStats& into, const ProtocolStats& from) {
  into.reads += from.reads;
  into.writes += from.writes;
  into.l1ReadHits += from.l1ReadHits;
  into.l1WriteHits += from.l1WriteHits;
  into.readMisses += from.readMisses;
  into.writeMisses += from.writeMisses;
  into.upgrades += from.upgrades;
  into.l2DataHits += from.l2DataHits;
  into.memoryFetches += from.memoryFetches;
  into.invalidationsSent += from.invalidationsSent;
  into.broadcastInvalidations += from.broadcastInvalidations;
  into.ownershipTransfers += from.ownershipTransfers;
  into.providershipTransfers += from.providershipTransfers;
  into.hintMessages += from.hintMessages;
  into.providerResolvedMisses += from.providerResolvedMisses;
  into.writebacks += from.writebacks;
  into.l2Evictions += from.l2Evictions;
  into.dirEvictionInvalidations += from.dirEvictionInvalidations;
  for (std::size_t c = 0; c < from.missByClass.size(); ++c) {
    into.missByClass[c] += from.missByClass[c];
    into.latencyByClass[c] += from.latencyByClass[c];
    into.linksByClass[c] += from.linksByClass[c];
  }
  into.missLatency += from.missLatency;
}

void mergeEnergyEvents(CacheEnergyEvents& into,
                       const CacheEnergyEvents& from) {
  for (const EnergyEventField& f : energyEventFields())
    into.*f.field += from.*f.field;
}

ServerSystem::ServerSystem(const ExperimentConfig& cfg)
    : cfg_(cfg),
      perVm_(profiles::byWorkloadName(cfg.workloadName)),
      schedule_(ChurnSchedule::parse(cfg.scaleout.churn, cfg.seed,
                                     cfg.windowCycles)),
      upperBound_(cfg.scaleout.chips *
                      static_cast<std::uint32_t>(perVm_.size()) +
                  schedule_.bootEvents()),
      server_(cfg.chip, cfg.scaleout.chips, perVm_, cfg.seed,
              cfg.dedupEnabled),
      topo_(cfg.chip, cfg.scaleout.chips, cfg.scaleout.link.ring),
      link_(cfg.scaleout.chips, cfg.scaleout.link, upperBound_ + 2) {
  EECC_CHECK(cfg.scaleout.chips >= 1);
  for (std::uint32_t c = 0; c < cfg.scaleout.chips; ++c) {
    systems_.push_back(std::make_unique<CmpSystem>(
        cfg.chip, cfg.protocol,
        std::make_unique<ChipSource>(&server_,
                                     static_cast<std::int32_t>(c))));
    // Remote memory hook: a miss to a page homed on another chip pays the
    // inter-chip round trip (1 control flit out, a data message back) on
    // top of its DRAM service time. Attributed to the page's owning VM
    // (shared row for deduplicated pages).
    systems_.back()->protocol().setRemoteMemory(
        [this, c](Addr addr, Tick now) -> Tick {
          const std::int32_t home = server_.homeChipOf(addr);
          if (home < 0 || home == static_cast<std::int32_t>(c)) return 0;
          const std::size_t row = rowOf(server_.vmOfPage(addr));
          const Tick arrive = link_.roundTrip(
              static_cast<std::int32_t>(c), home, cfg_.chip.net.controlFlits,
              cfg_.chip.net.dataFlits, now, row);
          return arrive - now;
        });
  }
}

void ServerSystem::warmup(Tick cycles) {
  for (auto& sys : systems_) sys->warmup(cycles);
  link_.resetStats();
}

void ServerSystem::attachLedgers(Tick occupancyEvery) {
  EECC_CHECK(ledgers_.empty());
  for (std::uint32_t c = 0; c < chips(); ++c) {
    auto ledger = std::make_shared<AttributionLedger>(
        cfg_.chip,
        server_.chipLayout(static_cast<std::int32_t>(c), upperBound_),
        [w = &server_](Addr page) { return w->vmOfPage(page); },
        occupancyEvery);
    systems_[c]->attachLedger(ledger.get());
    ledgers_.push_back(std::move(ledger));
  }
}

void ServerSystem::run(Tick windowCycles) {
  // The global timeline starts at the latest chip clock (chips drain
  // different amounts past warmup); earlier chips simply run a slightly
  // longer first segment.
  Tick start = 0;
  for (auto& sys : systems_)
    start = std::max(start, sys->events().now());
  const Tick end = start + windowCycles;

  lifecycle_ = std::make_unique<VmLifecycle>(&server_, &link_, schedule_,
                                             start, end, cfg_.seed, perVm_);
  Tick t = start;
  while (t < end) {
    Tick boundary = lifecycle_->nextBoundary(t);
    if (boundary > end) boundary = end;
    for (auto& sys : systems_) {
      const Tick now = sys->events().now();
      if (now < boundary) sys->run(boundary - now);
    }
    // Every chip is drained past the boundary: no in-flight coherence
    // spans the reconfiguration below (the remap epoch's flush).
    if (lifecycle_->applyDue(boundary) > 0) {
      for (std::uint32_t c = 0; c < chips(); ++c) {
        systems_[c]->refreshActive();
        if (!ledgers_.empty())
          ledgers_[c]->retile(server_.chipLayout(
              static_cast<std::int32_t>(c), upperBound_));
      }
    }
    t = boundary;
  }
}

ExperimentResult runScaleoutExperiment(const ExperimentConfig& cfg) {
  ServerSystem server(cfg);

  std::vector<std::unique_ptr<MonitorSet>> monitors;
  if (cfg.conformanceCheck)
    for (std::uint32_t c = 0; c < server.chips(); ++c) {
      monitors.push_back(std::make_unique<MonitorSet>());
      server.system(c).attachChecker(monitors.back().get(),
                                     cfg.checkSweepEvery);
    }
  if (cfg.warmupCycles > 0) server.warmup(cfg.warmupCycles);

  ExperimentResult r;
  std::vector<MetricRegistry> regs(server.chips());
  if (cfg.obs.any())
    for (std::uint32_t c = 0; c < server.chips(); ++c)
      registerSystem(regs[c], server.system(c));
  if (cfg.obs.ledger) {
    server.attachLedgers(cfg.obs.ledgerOccupancyEvery);
    for (std::uint32_t c = 0; c < server.chips(); ++c)
      registerLedger(regs[c], *server.ledgers()[c], &server.system(c));
  }
  std::vector<std::shared_ptr<StageRecorder>> stageRecs;
  if (cfg.obs.stageTrace)
    for (std::uint32_t c = 0; c < server.chips(); ++c) {
      stageRecs.push_back(std::make_shared<StageRecorder>());
      server.system(c).attachStageRecorder(stageRecs.back().get());
      registerStageRecorder(regs[c], *stageRecs.back());
    }

  SelfProfiler selfprof;
  if (cfg.obs.selfProf) selfprof.install();
  server.run(cfg.windowCycles);
  if (cfg.obs.selfProf) {
    selfprof.uninstall();
    r.selfprof = selfprof.rows();
    r.selfprofWallNs = selfprof.wallNs();
  }

  r.workload = cfg.workloadName;
  r.protocol = cfg.protocol;
  r.altLayout = cfg.altLayout;
  r.seed = cfg.seed;
  r.chips = server.chips();
  r.cycles = cfg.windowCycles;  // the common measured window

  auto detail = std::make_shared<ScaleoutDetail>();
  for (std::uint32_t c = 0; c < server.chips(); ++c) {
    CmpSystem& sys = server.system(c);
    ScaleoutChipSummary chip;
    chip.cycles = sys.cycles();
    chip.ops = sys.opsCompleted();
    chip.throughput = sys.throughput();
    chip.stats = sys.protocol().stats();
    chip.events = sys.protocol().energyEvents();
    chip.noc = sys.network().stats();
    if (cfg.obs.ledger) chip.ledger = server.ledgers()[c];

    r.ops += chip.ops;
    r.simEvents += sys.events().executedEvents();
    mergeProtocolStats(r.stats, chip.stats);
    mergeEnergyEvents(r.events, chip.events);
    r.noc.merge(chip.noc);
    detail->chips.push_back(std::move(chip));
  }
  r.throughput = r.cycles > 0 ? static_cast<double>(r.ops) /
                                    static_cast<double>(r.cycles)
                              : 0.0;
  r.dedupSavedFraction = server.workload().pages().savedFraction();

  const VmLifecycle* life = server.lifecycle();
  r.churnApplied = life->applied();
  r.interchip = server.link().stats();
  detail->boots = life->boots();
  detail->shutdowns = life->shutdowns();
  detail->migrationsStarted = life->migrationsStarted();
  detail->migrationsCompleted = life->migrationsCompleted();
  detail->storms = life->storms();
  detail->skippedEvents = life->skipped();
  detail->totalVms = server.workload().vmCount();
  detail->cowEvents = server.workload().pages().cowEvents();
  detail->reclaimedPages = server.workload().pages().reclaimedPages();
  for (std::size_t row = 0; row < server.link().rows(); ++row) {
    detail->interchipRowFlits.push_back(server.link().rowFlits(row));
    detail->interchipRowMessages.push_back(server.link().rowMessages(row));
  }
  r.scaleout = detail;

  const EnergyModel energy(cfg.protocol, chipParamsOf(cfg.chip),
                           cfg.protocol == ProtocolKind::Directory
                               ? cfg.chip.dirSharingCode
                               : SharingCode::FullMap);
  r.cachePj = energy.cacheEnergy(r.events);
  r.nocPj = energy.nocEnergy(r.noc);
  r.cacheMw = EnergyModel::pjToMw(r.cachePj.total(), r.cycles);
  r.linkMw = EnergyModel::pjToMw(r.nocPj.linkPj, r.cycles);
  r.routingMw = EnergyModel::pjToMw(r.nocPj.routingPj, r.cycles);
  // Inter-chip link energy: flit-hop based like the on-chip links, scaled
  // by the off-chip energy multiplier (SerDes + board trace per crossing).
  r.interchipPj = static_cast<double>(r.interchip.flitHops) *
                  energy.flitLinkPj() * cfg.scaleout.link.energyPerFlitX;
  r.interchipMw = EnergyModel::pjToMw(r.interchipPj, r.cycles);

  for (const auto& m : monitors) {
    r.checkViolations += m->log().total();
    for (const Violation& v : m->log().entries())
      r.checkMessages.push_back(v.str());
  }

  if (cfg.obs.snapshotMetrics) {
    for (std::uint32_t c = 0; c < server.chips(); ++c) {
      const std::string prefix = "chip" + std::to_string(c) + ".";
      for (MetricRegistry::Sample& s : regs[c].snapshot()) {
        s.name = prefix + s.name;
        r.metrics.push_back(std::move(s));
      }
    }
    auto counter = [&r](std::string name, std::uint64_t v) {
      MetricRegistry::Sample s;
      s.name = std::move(name);
      s.kind = MetricRegistry::Kind::Counter;
      s.u64 = v;
      s.f64 = static_cast<double>(v);
      r.metrics.push_back(std::move(s));
    };
    auto gauge = [&r](std::string name, double v) {
      MetricRegistry::Sample s;
      s.name = std::move(name);
      s.kind = MetricRegistry::Kind::Gauge;
      s.f64 = v;
      r.metrics.push_back(std::move(s));
    };
    auto accumulator = [&](const std::string& prefix,
                           const Accumulator& acc) {
      counter(prefix + ".count", acc.count());
      gauge(prefix + ".sum", acc.sum());
      gauge(prefix + ".mean", acc.mean());
      gauge(prefix + ".min", acc.min());
      gauge(prefix + ".max", acc.max());
      gauge(prefix + ".variance", acc.variance());
    };
    counter("server.chips", r.chips);
    counter("server.churnApplied", r.churnApplied);
    counter("server.boots", detail->boots);
    counter("server.shutdowns", detail->shutdowns);
    counter("server.migrationsStarted", detail->migrationsStarted);
    counter("server.migrationsCompleted", detail->migrationsCompleted);
    counter("server.storms", detail->storms);
    counter("server.skippedEvents", detail->skippedEvents);
    counter("server.totalVms", detail->totalVms);
    counter("server.reclaimedPages",
            server.workload().pages().reclaimedPages());
    counter("server.cowEvents", server.workload().pages().cowEvents());
    counter("interchip.messages", r.interchip.messages);
    counter("interchip.dataMessages", r.interchip.dataMessages);
    counter("interchip.flits", r.interchip.flits);
    counter("interchip.flitHops", r.interchip.flitHops);
    counter("interchip.remoteFetches", r.interchip.remoteFetches);
    counter("interchip.migrations", r.interchip.migrations);
    counter("interchip.migrationPages", r.interchip.migrationPages);
    accumulator("interchip.latency", r.interchip.latency);
    accumulator("interchip.wait", r.interchip.wait);
    gauge("interchip.pj", r.interchipPj);
    gauge("interchip.mw", r.interchipMw);
    const std::uint32_t bound = server.totalVmUpperBound();
    for (std::size_t row = 0; row < server.link().rows(); ++row) {
      const std::string label =
          row < bound ? "vm" + std::to_string(row)
                      : (row == bound ? "shared" : "other");
      counter("interchip.row." + label + ".flits",
              detail->interchipRowFlits[row]);
      counter("interchip.row." + label + ".messages",
              detail->interchipRowMessages[row]);
    }
  }
  return r;
}

}  // namespace eecc
