// ServerSystem — the N-chip scale-out server (DESIGN.md §14).
//
// Federated architecture: every chip is a complete CmpSystem (its own
// event queue, NoC, protocol and caches) fed by one shared ServerWorkload
// through per-chip ChipSource adapters. Chips advance in fixed order
// through *segments* of a common global timeline: the run loop picks the
// next churn boundary, runs every chip up to it (each run() ends with a
// full drain of in-flight misses — the remap epoch's flush), then lets
// the VmLifecycle engine mutate placement before the next segment. With
// no churn there is exactly one segment and a single chip reproduces the
// single-chip simulator's event sequence bit-for-bit.
//
// Cross-chip coherence is avoided by construction: the only pages shared
// across chips are read-only server-deduplicated ones (writes break the
// sharing via copy-on-write onto the writer's chip), so chips interact
// solely through the InterChipLink — remote memory fetches on the miss
// path (Protocol::setRemoteMemory) and migration bulk transfers.
//
// Scale-out runs support the metrics/ledger observability attachments;
// the timeline sampler and message trace are single-chip instruments and
// are not attached here.
#pragma once

#include <memory>
#include <vector>

#include "core/experiment.h"
#include "scaleout/hier_topology.h"
#include "scaleout/interchip.h"
#include "scaleout/server_workload.h"
#include "scaleout/vm_lifecycle.h"

namespace eecc {

/// Field-wise sums for cross-chip aggregation (the structs deliberately
/// have no merge methods of their own — single-chip code never needs one).
void mergeProtocolStats(ProtocolStats& into, const ProtocolStats& from);
void mergeEnergyEvents(CacheEnergyEvents& into, const CacheEnergyEvents& from);

class ServerSystem {
 public:
  /// Builds the server from a scale-out ExperimentConfig: chips copies of
  /// cfg.chip, the initial consolidation of cfg.workloadName on every
  /// chip, the churn schedule parsed from cfg.scaleout.churn.
  explicit ServerSystem(const ExperimentConfig& cfg);

  std::uint32_t chips() const {
    return static_cast<std::uint32_t>(systems_.size());
  }
  /// VM ids this run can ever create: initial VMs + scheduled boots.
  /// Ledger and link row spaces are sized from it (rows = bound + 2).
  std::uint32_t totalVmUpperBound() const { return upperBound_; }

  CmpSystem& system(std::uint32_t chip) { return *systems_[chip]; }
  const CmpSystem& system(std::uint32_t chip) const {
    return *systems_[chip];
  }
  ServerWorkload& workload() { return server_; }
  const ServerWorkload& workload() const { return server_; }
  InterChipLink& link() { return link_; }
  const InterChipLink& link() const { return link_; }
  const HierarchicalTopology& topology() const { return topo_; }
  /// Lifecycle tallies; null until run() is called.
  const VmLifecycle* lifecycle() const { return lifecycle_.get(); }

  /// Warms every chip (sequential, fixed order) and clears the inter-chip
  /// counters, mirroring CmpSystem::warmup's semantics.
  void warmup(Tick cycles);

  /// Creates and attaches one AttributionLedger per chip, all sized to
  /// the server-wide row space (totalVmUpperBound + shared + other) so
  /// rows keep meaning VM identities across migrations. Call after
  /// warmup, before run.
  void attachLedgers(Tick occupancyEvery);
  const std::vector<std::shared_ptr<AttributionLedger>>& ledgers() const {
    return ledgers_;
  }

  /// Runs the measured window: segments between churn boundaries, chips
  /// in fixed order within each, lifecycle applied at every boundary.
  void run(Tick windowCycles);

 private:
  /// Attribution row of a VM in the server-wide row space.
  std::size_t rowOf(VmId vm) const {
    if (vm >= 0 && static_cast<std::uint32_t>(vm) < upperBound_)
      return static_cast<std::size_t>(vm);
    return vm == kVmShared ? upperBound_
                           : static_cast<std::size_t>(upperBound_) + 1;
  }

  ExperimentConfig cfg_;
  std::vector<BenchmarkProfile> perVm_;  ///< Initial per-slot mix.
  ChurnSchedule schedule_;
  std::uint32_t upperBound_;
  ServerWorkload server_;
  HierarchicalTopology topo_;
  InterChipLink link_;
  std::vector<std::unique_ptr<CmpSystem>> systems_;
  std::vector<std::shared_ptr<AttributionLedger>> ledgers_;
  std::unique_ptr<VmLifecycle> lifecycle_;
};

/// Scale-out counterpart of runExperiment: builds a ServerSystem, runs
/// warmup + the churned window, and aggregates everything into one
/// ExperimentResult (chip sums in the legacy fields, per-chip and
/// inter-chip decompositions under result.scaleout / result.interchip;
/// per-chip metrics snapshot under "chip<k>." name prefixes).
/// runExperiment dispatches here when cfg.scaleout.active().
ExperimentResult runScaleoutExperiment(const ExperimentConfig& cfg);

}  // namespace eecc
