// Scale-out (multi-chip server) configuration — DESIGN.md §14.
//
// A server is N identical CMP chips (each a full CmpConfig mesh with its
// own coherence domain) joined by an inter-chip interconnect that is
// slower, narrower and costlier per flit than the on-chip NoC. The knobs
// here are deliberately few: chip count, the link's latency / bandwidth /
// energy parameters, and the VM churn schedule (a spec string parsed by
// scaleout/vm_lifecycle.h). A default-constructed ScaleoutConfig is
// inactive — chips == 1 and no churn — and every single-chip code path is
// bit-identical to a build without the subsystem.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace eecc {

/// Latency / bandwidth / energy of one directed chip-to-chip channel.
/// Defaults follow the usual SerDes-link ratios: an order of magnitude
/// slower than an on-chip hop (Table III: 5 cycles/hop on-chip) and
/// several times the energy per flit (Rainbow's inter-chip fabric
/// motivates modeling the crossing as expensive, see PAPERS.md).
struct InterChipLinkConfig {
  Tick hopCycles = 48;        ///< Head-flit traversal latency per crossing.
  Tick cyclesPerFlit = 4;     ///< Serialization: link occupancy per flit.
  double energyPerFlitX = 8.0;  ///< × the on-chip per-flit link energy.
  /// Chip graph: false = fully connected (1 crossing between any pair),
  /// true = bidirectional ring (crossings = ring distance).
  bool ring = false;
};

struct ScaleoutConfig {
  std::uint32_t chips = 1;
  /// VM churn schedule (scaleout/vm_lifecycle.h): ';'-separated scripted
  /// events ("boot@50000:chip=1", "migrate@80000:vm=2:to=3", ...) or
  /// "random:events=N:until=T" drawn from the experiment seed. Empty =
  /// static consolidation, today's single-chip behavior per chip.
  std::string churn;
  InterChipLinkConfig link{};

  /// Whether the scale-out path is engaged at all. Inactive configs run
  /// the legacy single-chip experiment byte-for-byte.
  bool active() const { return chips > 1 || !churn.empty(); }
};

}  // namespace eecc
