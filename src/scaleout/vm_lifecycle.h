// VM lifecycle engine: scripted and randomized churn for the scale-out
// server (DESIGN.md §14).
//
// A churn schedule is a `;`-separated list of events, ticks relative to
// the measured window's start:
//
//   boot@T[:chip=C][:profile=NAME]   boot a VM (auto-placed when chip is
//                                    omitted; profile cycles through the
//                                    initial per-slot mix when omitted)
//   shutdown@T[:vm=V]                shut a VM down (random running VM
//                                    when omitted)
//   migrate@T[:vm=V][:to=C]          live-migrate a VM to chip C (random
//                                    choices when omitted)
//   storm@T[:vm=V][:len=L]           dedup-break CoW storm for L cycles
//                                    (default 25000)
//   random:events=N[:until=T]        N seeded random events in [0, T)
//                                    (default T = the whole window)
//
// All randomness — event synthesis and open-choice resolution (which VM,
// which chip) — comes from one Rng seeded with the experiment seed, so a
// schedule replays bit-identically across runs, job counts and --resume.
//
// Events are applied at churn *boundaries*: the server run loop drains
// every chip up to the boundary tick before the lifecycle mutates
// placement, so no in-flight coherence ever spans a reconfiguration (the
// drain is the remap epoch's flush). Live migration is asynchronous: the
// start event reserves a destination slot and streams the VM's resident
// pages over the inter-chip link; the completion — the link's delivery
// tick — becomes a new boundary at which the threads repin (stop-and-copy
// with the reference streams following the VM). Infeasible events (no
// free slot, VM already gone) are skipped and counted, never fatal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "scaleout/interchip.h"
#include "scaleout/server_workload.h"
#include "workload/profile.h"

namespace eecc {

struct ChurnEvent {
  enum class Kind : std::uint8_t { Boot, Shutdown, Migrate, Storm };
  Kind kind = Kind::Boot;
  Tick at = 0;               ///< Window-relative tick.
  VmId vm = kInvalidVm;      ///< Target VM; kInvalidVm = pick at random.
  std::int32_t chip = -1;    ///< Boot placement / migration dst; -1 = auto.
  Tick stormLen = 25'000;    ///< Storm duration (Kind::Storm only).
  std::string profile;       ///< Boot profile name; empty = cycle the mix.
};

struct ChurnSchedule {
  std::vector<ChurnEvent> events;  ///< Sorted by `at` (stable).

  /// Parses the grammar above. Randomized events are synthesized here
  /// (kinds, ticks) from `seed`; `windowCycles` bounds default random
  /// ticks. Throws std::runtime_error on malformed input.
  static ChurnSchedule parse(const std::string& spec, std::uint64_t seed,
                             Tick windowCycles);

  /// Boot events in the schedule — the additive term of the server's VM
  /// id upper bound (ledger rows and link rows are sized from it).
  std::uint32_t bootEvents() const;
};

class VmLifecycle {
 public:
  /// `bootProfiles`: the cycle of profiles used by boot events without an
  /// explicit profile (normally the initial per-slot mix).
  VmLifecycle(ServerWorkload* server, InterChipLink* link,
              ChurnSchedule schedule, Tick windowStart, Tick windowEnd,
              std::uint64_t seed,
              std::vector<BenchmarkProfile> bootProfiles);

  /// Smallest pending boundary tick strictly greater than `after`
  /// (absolute), or kTickMax when nothing is pending.
  Tick nextBoundary(Tick after) const;

  /// Applies everything due at or before `now` (absolute): migration
  /// completions first, then storm ends, then scheduled events, each in
  /// deterministic order. Returns the number of state changes applied.
  std::uint64_t applyDue(Tick now);

  std::uint64_t applied() const { return applied_; }
  std::uint64_t skipped() const { return skipped_; }
  std::uint64_t migrationsStarted() const { return migrationsStarted_; }
  std::uint64_t migrationsCompleted() const { return migrationsCompleted_; }
  std::uint64_t migrationsInFlight() const {
    return pendingMigrations_.size();
  }
  std::uint64_t boots() const { return boots_; }
  std::uint64_t shutdowns() const { return shutdowns_; }
  std::uint64_t storms() const { return storms_; }

 private:
  struct PendingMigration {
    Tick done = 0;
    VmId vm = kInvalidVm;
    std::int32_t dstChip = -1;
    std::uint32_t dstSlot = 0;
  };
  struct PendingStormEnd {
    Tick at = 0;
    VmId vm = kInvalidVm;
  };

  bool slotFree(std::int32_t chip, std::uint32_t slot) const {
    return slotVm_[static_cast<std::size_t>(chip)][slot] == kInvalidVm;
  }
  /// Lowest free slot on `chip`, or -1 when full.
  std::int32_t freeSlotOn(std::int32_t chip) const;
  /// Chip with the most free slots (ties to the lowest id); -1 when the
  /// server is full.
  std::int32_t autoBootChip() const;
  /// Random running VM that is not mid-migration; kInvalidVm when none.
  VmId pickRunningVm();
  bool migrationPending(VmId vm) const;

  void applyEvent(const ChurnEvent& ev, Tick now);
  void completeMigration(const PendingMigration& m);

  ServerWorkload* server_;
  InterChipLink* link_;
  std::vector<ChurnEvent> events_;
  std::size_t nextEvent_ = 0;
  Tick windowStart_;
  Tick windowEnd_;
  Rng rng_;
  std::vector<BenchmarkProfile> bootProfiles_;
  std::uint64_t bootCount_ = 0;  ///< Cycles bootProfiles_.

  std::vector<std::vector<VmId>> slotVm_;  ///< [chip][slot] occupancy.
  std::vector<PendingMigration> pendingMigrations_;
  std::vector<PendingStormEnd> pendingStormEnds_;

  std::uint64_t applied_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t migrationsStarted_ = 0;
  std::uint64_t migrationsCompleted_ = 0;
  std::uint64_t boots_ = 0;
  std::uint64_t shutdowns_ = 0;
  std::uint64_t storms_ = 0;
};

}  // namespace eecc
