// Detailed DDR memory-controller timing model.
//
// The paper models memory as a fixed latency plus a small random delay,
// noting that "we have performed simulations with a more detailed DDR
// memory controller model and we have found that this does not affect the
// results" (Section V-A). This module provides that more detailed model so
// the claim can be re-validated (bench/ablation_memory): a DDR3-1333-style
// device behind each controller with banks, row buffers and an open-page
// FCFS scheduler.
//
// Timing parameters are in *memory-bus* cycles and scaled to core cycles
// by `coreCyclesPerMemCycle` (3 GHz core / 667 MHz bus ≈ 4.5, rounded).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace eecc {

struct DdrConfig {
  std::uint32_t banks = 8;
  std::uint32_t rowBytes = 8192;  ///< Row-buffer size per bank.
  // DDR3-1333-ish core timings (memory-bus cycles).
  std::uint32_t tCas = 9;    ///< Column access (row-buffer hit).
  std::uint32_t tRcd = 9;    ///< Activate to column.
  std::uint32_t tRp = 9;     ///< Precharge.
  std::uint32_t tRas = 24;   ///< Activate to precharge (row restore).
  std::uint32_t burst = 4;   ///< Data-bus cycles per 64-byte block.
  std::uint32_t coreCyclesPerMemCycle = 5;
  /// Fixed pipeline overhead on top of device timing (controller queues,
  /// PHY, serialization), in core cycles.
  Tick frontEndCycles = 40;
};

/// One controller instance (one per border tile). Not thread-safe; it is
/// driven from the single-threaded event loop.
class DdrController {
 public:
  explicit DdrController(DdrConfig cfg = {}) : cfg_(cfg) {
    EECC_CHECK(cfg_.banks >= 1);
    banks_.resize(cfg_.banks);
  }

  const DdrConfig& config() const { return cfg_; }

  /// Schedules a block read arriving at core-cycle `now`; returns the
  /// core-cycle at which the data has left the device (FCFS per bank,
  /// open-page policy: rows stay open until a conflict precharges them).
  Tick schedule(Addr block, Tick now) {
    Bank& bank = bankOf(block);
    const std::uint64_t row = rowOf(block);
    const Tick start = now > bank.readyAt ? now : bank.readyAt;

    std::uint64_t memCycles = 0;
    if (bank.openRow == row && bank.rowValid) {
      memCycles = cfg_.tCas;  // row-buffer hit
      ++rowHits_;
    } else if (!bank.rowValid) {
      memCycles = cfg_.tRcd + cfg_.tCas;  // closed bank: activate + access
      ++rowMisses_;
    } else {
      // Row conflict: precharge the open row first (respecting tRAS).
      memCycles = cfg_.tRp + cfg_.tRcd + cfg_.tCas;
      ++rowConflicts_;
    }
    memCycles += cfg_.burst;

    const Tick service =
        static_cast<Tick>(memCycles) * cfg_.coreCyclesPerMemCycle;
    const Tick done = start + cfg_.frontEndCycles + service;
    bank.openRow = row;
    bank.rowValid = true;
    // The bank can take the next request once the column/burst is done;
    // tRAS bounds how soon a *different* row could be opened — folded into
    // readyAt as a conservative single bound.
    const Tick rasBound =
        start + static_cast<Tick>(cfg_.tRas) * cfg_.coreCyclesPerMemCycle;
    bank.readyAt = done > rasBound ? done : rasBound;
    ++requests_;
    return done;
  }

  std::uint64_t requests() const { return requests_; }
  std::uint64_t rowHits() const { return rowHits_; }
  std::uint64_t rowMisses() const { return rowMisses_; }
  std::uint64_t rowConflicts() const { return rowConflicts_; }
  double rowHitRate() const {
    return requests_ ? static_cast<double>(rowHits_) /
                           static_cast<double>(requests_)
                     : 0.0;
  }

 private:
  struct Bank {
    std::uint64_t openRow = 0;
    bool rowValid = false;
    Tick readyAt = 0;
  };

  Bank& bankOf(Addr block) {
    // Block-interleave banks (consecutive blocks hit different banks).
    return banks_[static_cast<std::size_t>(blockIndex(block) % cfg_.banks)];
  }
  std::uint64_t rowOf(Addr block) const {
    return block / (static_cast<std::uint64_t>(cfg_.rowBytes) * cfg_.banks);
  }

  DdrConfig cfg_;
  std::vector<Bank> banks_;
  std::uint64_t requests_ = 0;
  std::uint64_t rowHits_ = 0;
  std::uint64_t rowMisses_ = 0;
  std::uint64_t rowConflicts_ = 0;
};

}  // namespace eecc
