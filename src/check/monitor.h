// Online invariant monitors — the conformance subsystem's pluggable
// checkers (see DESIGN.md §9).
//
// A MonitorSet implements the CheckHooks observation interface and fans
// every event out to its monitors; violations are *collected*, not
// aborted on, so the differential fuzzer can minimize the failing input
// and dump a replayable counterexample trace. Four monitors ship:
//
//  * SwmrMonitor      — single-writer/multiple-reader: at most one E/M
//                       copy per block, and an E/M copy excludes all
//                       other copies (state sweep).
//  * ValueMonitor     — data-value correctness against a golden flat
//                       memory replayed from the write-commit stream:
//                       loads must observe the current golden value
//                       (exactly when unserialized state cannot race,
//                       monotonically otherwise), and every quiesced
//                       cache copy must hold it (online + sweep).
//  * MetadataMonitor  — per-protocol coherence-metadata consistency:
//                       directory coverage, L2C$ owner precision,
//                       provider registration, inclusion. Delegates to
//                       Protocol::auditInvariants (sweep).
//  * ProgressMonitor  — no access outstanding longer than a cycle bound
//                       (online bookkeeping, checked at sweeps).
//
// Sweeps walk quiesced protocol state (blocks with in-flight transactions
// are skipped) and are driven by CmpSystem::attachChecker between run
// chunks and after the final drain.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/hooks.h"
#include "common/types.h"

namespace eecc {

class Protocol;

/// One invariant violation, with enough context to debug it and to pick
/// the failing block out of a counterexample trace.
struct Violation {
  std::string monitor;  ///< "swmr" | "value" | "metadata" | "progress"
  std::string message;
  Tick tick = 0;
  Addr block = 0;
  NodeId tile = kInvalidNode;

  std::string str() const;
};

/// Collects violations for the monitors (capped; a broken protocol can
/// produce thousands of identical reports per sweep).
class ViolationLog {
 public:
  explicit ViolationLog(std::size_t cap = 64) : cap_(cap) {}

  void report(Violation v) {
    if (log_.size() < cap_) log_.push_back(std::move(v));
    ++total_;
  }
  const std::vector<Violation>& entries() const { return log_; }
  std::uint64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }
  void clear() {
    log_.clear();
    total_ = 0;
  }

 private:
  std::size_t cap_;
  std::vector<Violation> log_;
  std::uint64_t total_ = 0;
};

/// A pluggable invariant monitor. Online hooks default to no-ops so
/// sweep-only monitors implement just sweep(), and vice versa.
class Monitor {
 public:
  virtual ~Monitor() = default;
  virtual const char* name() const = 0;

  virtual void onAccessIssued(NodeId /*tile*/, Addr /*block*/,
                              AccessType /*type*/, Tick /*now*/) {}
  virtual void onAccessDone(NodeId /*tile*/, Addr /*block*/,
                            AccessType /*type*/, Tick /*now*/,
                            std::uint64_t /*value*/, bool /*lineBusy*/) {}
  virtual void onWriteCommitted(Addr /*block*/, std::uint64_t /*value*/,
                                Tick /*now*/) {}
  /// Full-state check over quiesced protocol state.
  virtual void sweep(const Protocol& /*proto*/, Tick /*now*/,
                     ViolationLog& /*log*/) {}
};

class SwmrMonitor final : public Monitor {
 public:
  const char* name() const override { return "swmr"; }
  void sweep(const Protocol& proto, Tick now, ViolationLog& log) override;
};

class ValueMonitor final : public Monitor {
 public:
  const char* name() const override { return "value"; }
  void onAccessDone(NodeId tile, Addr block, AccessType type, Tick now,
                    std::uint64_t value, bool lineBusy) override;
  void onWriteCommitted(Addr block, std::uint64_t value, Tick now) override;
  void sweep(const Protocol& proto, Tick now, ViolationLog& log) override;

  /// The golden image of one block: commit count and current value.
  struct BlockImage {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t value = 0;
    bool operator==(const BlockImage&) const = default;
  };
  /// Golden flat memory, keyed by block address — the protocol-independent
  /// final image the differential fuzzer cross-checks (all four protocols
  /// executing the same bounded reference stream to completion must agree
  /// on every block's read/write counts).
  const std::unordered_map<Addr, BlockImage>& image() const {
    return golden_;
  }

  void setLog(ViolationLog* log) { log_ = log; }

 private:
  std::unordered_map<Addr, BlockImage> golden_;
  /// Last value each tile observed per block (per-tile coherence order:
  /// a tile must never read an older write after a newer one).
  std::unordered_map<Addr, std::vector<std::uint64_t>> lastSeen_;
  ViolationLog* log_ = nullptr;
};

class MetadataMonitor final : public Monitor {
 public:
  const char* name() const override { return "metadata"; }
  void sweep(const Protocol& proto, Tick now, ViolationLog& log) override;
};

class ProgressMonitor final : public Monitor {
 public:
  /// `bound` — cycles an access may stay outstanding before it counts as
  /// a progress violation (default generously above any legal miss:
  /// DRAM latency + full-mesh hops + invalidation fan-out is < 10^4).
  explicit ProgressMonitor(Tick bound = 100'000) : bound_(bound) {}
  const char* name() const override { return "progress"; }
  void onAccessIssued(NodeId tile, Addr block, AccessType type,
                      Tick now) override;
  void onAccessDone(NodeId tile, Addr block, AccessType type, Tick now,
                    std::uint64_t value, bool lineBusy) override;
  void sweep(const Protocol& proto, Tick now, ViolationLog& log) override;

  std::size_t outstanding() const { return outstanding_.size(); }

 private:
  struct Out {
    NodeId tile;
    Addr block;
    AccessType type;
    Tick start;
    bool reported = false;
  };
  Tick bound_;
  std::vector<Out> outstanding_;
};

/// The standard monitor battery behind `--check`: owns the four monitors,
/// fans the protocol hooks out to them, and runs their sweeps.
class MonitorSet final : public CheckHooks {
 public:
  struct Options {
    Tick progressBound = 100'000;
    std::size_t maxViolations = 64;
  };

  MonitorSet();
  explicit MonitorSet(Options opt);

  /// Adds a custom monitor (tests plug violation-injecting mocks in).
  void add(std::unique_ptr<Monitor> m) { monitors_.push_back(std::move(m)); }

  // CheckHooks — fan-out to every monitor.
  void onAccessIssued(NodeId tile, Addr block, AccessType type,
                      Tick now) override;
  void onAccessDone(NodeId tile, Addr block, AccessType type, Tick now,
                    std::uint64_t value, bool lineBusy) override;
  void onWriteCommitted(Addr block, std::uint64_t value, Tick now) override;

  /// Runs every monitor's full-state check. Call on quiesced (or at least
  /// drained-to-a-tick) protocol state.
  void sweep(const Protocol& proto, Tick now);

  const ViolationLog& log() const { return log_; }
  bool ok() const { return log_.empty(); }
  /// Golden flat-memory image (differential cross-checks).
  const std::unordered_map<Addr, ValueMonitor::BlockImage>& image() const {
    return value_->image();
  }
  std::size_t outstandingAccesses() const {
    return progress_->outstanding();
  }

 private:
  ViolationLog log_;
  ValueMonitor* value_;      // owned by monitors_
  ProgressMonitor* progress_;  // owned by monitors_
  std::vector<std::unique_ptr<Monitor>> monitors_;
};

}  // namespace eecc
