// Observation interface between the protocol engines and the conformance
// subsystem (src/check/). The base Protocol holds a CheckHooks pointer that
// is null in normal runs: every hook site is a single predictable
// null-check branch, so the monitors are free when disabled (the
// bench/micro_check_overhead gate holds the hook dispatch itself under 3%
// even when attached).
//
// Hook semantics:
//  * onAccessIssued fires when the core-visible access enters the protocol
//    (before the hit fast-path), onAccessDone when its completion callback
//    is about to run. Hits produce both calls back-to-back at the same
//    tick.
//  * onWriteCommitted fires at the serialization point of every write (the
//    value-oracle commit), carrying the fresh oracle value. This is the
//    write stream a golden flat memory replays.
//  * `lineBusy` on completion tells the monitor whether another
//    transaction currently holds the block's serialization lock — hit-path
//    reads during such a window may legitimately observe the pre-commit
//    value, so exact-value checks are relaxed to per-tile monotonicity.
#pragma once

#include "common/types.h"

namespace eecc {

class CheckHooks {
 public:
  virtual ~CheckHooks() = default;

  virtual void onAccessIssued(NodeId tile, Addr block, AccessType type,
                              Tick now) = 0;
  virtual void onAccessDone(NodeId tile, Addr block, AccessType type,
                            Tick now, std::uint64_t value, bool lineBusy) = 0;
  virtual void onWriteCommitted(Addr block, std::uint64_t value,
                                Tick now) = 0;
};

}  // namespace eecc
