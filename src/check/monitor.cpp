#include "check/monitor.h"

#include <cstdio>

#include "protocols/protocol.h"

namespace eecc {

std::string Violation::str() const {
  char head[96];
  std::snprintf(head, sizeof head, "[%s @%llu] ", monitor.c_str(),
                static_cast<unsigned long long>(tick));
  return head + message;
}

// ------------------------------------------------------------------- SWMR

void SwmrMonitor::sweep(const Protocol& proto, Tick now, ViolationLog& log) {
  // Per block over quiesced copies: writable states (E/M) are exclusive in
  // every protocol of the paper; O/P owners legally coexist with S copies.
  struct BlockCopies {
    NodeId writable = kInvalidNode;
    std::uint32_t copies = 0;
  };
  std::unordered_map<Addr, BlockCopies> blocks;
  proto.forEachL1Copy([&](const Protocol::L1CopyView& c) {
    if (c.busy) return;
    BlockCopies& b = blocks[c.block];
    b.copies += 1;
    if (c.state != 'E' && c.state != 'M') return;
    if (b.writable != kInvalidNode)
      log.report({name(),
                  "two writable copies of one block (SWMR violated): "
                  "tiles " +
                      std::to_string(b.writable) + " and " +
                      std::to_string(c.tile),
                  now, c.block, c.tile});
    b.writable = c.tile;
  });
  for (const auto& [block, b] : blocks) {
    if (b.writable != kInvalidNode && b.copies > 1)
      log.report({name(),
                  "writable copy coexists with " +
                      std::to_string(b.copies - 1) +
                      " other cop" + (b.copies == 2 ? "y" : "ies") +
                      " (SWMR violated): writer tile " +
                      std::to_string(b.writable),
                  now, block, b.writable});
  }
}

// ------------------------------------------------------------------ Value

void ValueMonitor::onWriteCommitted(Addr block, std::uint64_t value,
                                    Tick now) {
  BlockImage& img = golden_[block];
  img.writes += 1;
  // Oracle values are a global monotone sequence; a per-block regression
  // means the protocol re-committed an old write.
  if (value <= img.value && img.value != 0 && log_ != nullptr)
    log_->report({name(),
                  "write commit is not newer than the golden value (" +
                      std::to_string(value) + " <= " +
                      std::to_string(img.value) + ")",
                  now, block, kInvalidNode});
  img.value = value;
}

void ValueMonitor::onAccessDone(NodeId tile, Addr block, AccessType type,
                                Tick now, std::uint64_t value,
                                bool lineBusy) {
  BlockImage& img = golden_[block];
  if (type == AccessType::Write) return;
  img.reads += 1;

  // Exact check when the observation cannot race an in-flight conflicting
  // transaction; otherwise the load may legitimately be serialized before
  // a write that already committed, so fall back to per-tile monotonicity.
  if (!lineBusy && value != img.value && log_ != nullptr)
    log_->report({name(),
                  "load observed a stale value: tile " +
                      std::to_string(tile) + " read " +
                      std::to_string(value) + ", golden memory holds " +
                      std::to_string(img.value),
                  now, block, tile});
  auto& seen = lastSeen_[block];
  const auto idx = static_cast<std::size_t>(tile);
  if (seen.size() <= idx) seen.resize(idx + 1, 0);
  if (value < seen[idx] && log_ != nullptr)
    log_->report({name(),
                  "per-tile read order went backwards: tile " +
                      std::to_string(tile) + " read " +
                      std::to_string(value) + " after " +
                      std::to_string(seen[idx]),
                  now, block, tile});
  seen[idx] = value;
}

void ValueMonitor::sweep(const Protocol& proto, Tick now,
                         ViolationLog& log) {
  // Every quiesced cache copy must hold the golden value. (Copies of
  // never-written blocks hold the zero-filled memory image.)
  proto.forEachL1Copy([&](const Protocol::L1CopyView& c) {
    if (c.busy) return;
    const auto it = golden_.find(c.block);
    const std::uint64_t want = it == golden_.end() ? 0 : it->second.value;
    if (c.value != want)
      log.report({name(),
                  "cache copy diverged from the golden memory: tile " +
                      std::to_string(c.tile) + " state " +
                      std::string(1, c.state) + " holds " +
                      std::to_string(c.value) + ", golden memory holds " +
                      std::to_string(want),
                  now, c.block, c.tile});
  });
}

// --------------------------------------------------------------- Metadata

void MetadataMonitor::sweep(const Protocol& proto, Tick now,
                            ViolationLog& log) {
  proto.auditInvariants([&](const std::string& msg) {
    log.report({name(), msg, now, 0, kInvalidNode});
  });
}

// --------------------------------------------------------------- Progress

void ProgressMonitor::onAccessIssued(NodeId tile, Addr block,
                                     AccessType type, Tick now) {
  outstanding_.push_back({tile, block, type, now});
}

void ProgressMonitor::onAccessDone(NodeId tile, Addr block, AccessType type,
                                   Tick /*now*/, std::uint64_t /*value*/,
                                   bool /*lineBusy*/) {
  for (auto it = outstanding_.begin(); it != outstanding_.end(); ++it) {
    if (it->tile == tile && it->block == block && it->type == type) {
      outstanding_.erase(it);
      return;
    }
  }
  // A completion with no matching issue means the hooks were attached
  // mid-transaction (e.g. after warmup); ignore it.
}

void ProgressMonitor::sweep(const Protocol& /*proto*/, Tick now,
                            ViolationLog& log) {
  for (Out& o : outstanding_) {
    if (o.reported || now - o.start <= bound_) continue;
    o.reported = true;
    log.report({name(),
                "access outstanding beyond the progress bound: tile " +
                    std::to_string(o.tile) +
                    (o.type == AccessType::Write ? " write" : " read") +
                    " issued at " + std::to_string(o.start) + ", still "
                    "incomplete after " + std::to_string(now - o.start) +
                    " cycles",
                now, o.block, o.tile});
  }
}

// ------------------------------------------------------------- MonitorSet

MonitorSet::MonitorSet() : MonitorSet(Options{}) {}

MonitorSet::MonitorSet(Options opt) : log_(opt.maxViolations) {
  monitors_.push_back(std::make_unique<SwmrMonitor>());
  auto value = std::make_unique<ValueMonitor>();
  value->setLog(&log_);
  value_ = value.get();
  monitors_.push_back(std::move(value));
  monitors_.push_back(std::make_unique<MetadataMonitor>());
  auto progress = std::make_unique<ProgressMonitor>(opt.progressBound);
  progress_ = progress.get();
  monitors_.push_back(std::move(progress));
}

void MonitorSet::onAccessIssued(NodeId tile, Addr block, AccessType type,
                                Tick now) {
  for (auto& m : monitors_) m->onAccessIssued(tile, block, type, now);
}

void MonitorSet::onAccessDone(NodeId tile, Addr block, AccessType type,
                              Tick now, std::uint64_t value, bool lineBusy) {
  for (auto& m : monitors_)
    m->onAccessDone(tile, block, type, now, value, lineBusy);
}

void MonitorSet::onWriteCommitted(Addr block, std::uint64_t value,
                                  Tick now) {
  for (auto& m : monitors_) m->onWriteCommitted(block, value, now);
}

void MonitorSet::sweep(const Protocol& proto, Tick now) {
  for (auto& m : monitors_) m->sweep(proto, now, log_);
}

}  // namespace eecc
