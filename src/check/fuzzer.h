// Differential conformance fuzzer (see DESIGN.md §9).
//
// Each fuzz seed builds one randomized reference stream from the synthetic
// workload generators (same Workload + Rng machinery as the experiments),
// records it as a bounded trace, and replays that identical trace through
// all eight protocols with the full monitor battery attached. Because every
// protocol executes the same per-tile streams to completion, the final
// per-block read/write counts of the golden memory image are protocol-
// independent — any disagreement is a coherence bug in one of them.
//
// On a violation (or a cross-protocol image mismatch) the failing stream
// is minimized ddmin-style against the violating protocol and dumped as a
// replayable `.eecctrc` counterexample:
//
//   eecc_sim --replay <file>.eecctrc --protocol <kind> --check
//
// Seeds run in parallel on the ExperimentRunner pool (EECC_JOBS).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "check/monitor.h"
#include "core/config.h"
#include "workload/trace.h"

namespace eecc {

struct FuzzOptions {
  CmpConfig chip;  ///< Defaults to fuzzChip().
  std::vector<ProtocolKind> protocols = {
      ProtocolKind::Directory, ProtocolKind::DiCo,
      ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin,
      ProtocolKind::Mesi,      ProtocolKind::Moesi,
      ProtocolKind::Dragon,    ProtocolKind::Adapt};
  std::string workloadName = "apache4x16p";  ///< Table IV name.
  std::uint64_t seeds = 10;
  std::uint64_t baseSeed = 1;       ///< Seed i fuzzes stream baseSeed + i.
  std::uint64_t opsPerTile = 300;
  Tick sweepEvery = 20'000;
  Tick progressBound = 100'000;
  std::string outDir = ".";         ///< Counterexample dump directory.
  unsigned jobs = 0;                ///< Pool width; 0 = EECC_JOBS default.
  bool minimize = true;             ///< ddmin before dumping.

  FuzzOptions();
};

/// The default fuzzing chip: small 4x4 mesh with small caches, so a few
/// hundred ops per tile already exercise evictions, replacements and every
/// protocol race.
CmpConfig fuzzChip();

/// One protocol's checked replay of a seed's trace.
struct ProtocolRunReport {
  ProtocolKind kind = ProtocolKind::Directory;
  std::uint64_t ops = 0;            ///< Completed memory operations.
  std::uint64_t violationCount = 0;
  std::vector<Violation> violations;  ///< Capped sample (see ViolationLog).
  /// Final golden-memory image (per-block read/write counts + value).
  std::unordered_map<Addr, ValueMonitor::BlockImage> image;
};

struct SeedReport {
  std::uint64_t seed = 0;
  std::uint64_t records = 0;        ///< Trace length replayed.
  std::vector<ProtocolRunReport> runs;
  /// Cross-protocol disagreements (block counts or completed-op totals).
  std::vector<std::string> mismatches;
  std::string counterexample;       ///< Dumped trace path, if any.

  bool ok() const {
    if (!mismatches.empty()) return false;
    for (const ProtocolRunReport& r : runs)
      if (r.violationCount != 0) return false;
    return true;
  }
};

struct FuzzReport {
  std::vector<SeedReport> seeds;

  bool ok() const {
    for (const SeedReport& s : seeds)
      if (!s.ok()) return false;
    return true;
  }
  std::uint64_t totalViolations() const {
    std::uint64_t n = 0;
    for (const SeedReport& s : seeds) {
      n += s.mismatches.size();
      for (const ProtocolRunReport& r : s.runs) n += r.violationCount;
    }
    return n;
  }
};

/// Builds the bounded reference trace for one fuzz seed.
Trace makeFuzzTrace(const CmpConfig& chip, const std::string& workloadName,
                    std::uint64_t seed, std::uint64_t opsPerTile);

/// Replays `trace` (bounded, to completion) under `kind` with the monitor
/// battery attached. Also reports, as a progress violation, any trace
/// operation that never completed.
ProtocolRunReport runTraceChecked(const CmpConfig& chip, ProtocolKind kind,
                                  const Trace& trace, Tick sweepEvery,
                                  Tick progressBound);

/// ddmin-style reduction: the smallest record subsequence of `trace` that
/// still produces a monitor violation under `kind`.
Trace minimizeTrace(const CmpConfig& chip, ProtocolKind kind,
                    const Trace& trace, Tick sweepEvery, Tick progressBound);

/// Fuzzes a single seed: generate, replay under every protocol,
/// cross-check, and (on failure) minimize + dump the counterexample.
SeedReport fuzzOneSeed(const FuzzOptions& opt, std::uint64_t seed);

/// The full campaign: `opt.seeds` independent streams in parallel.
FuzzReport fuzz(const FuzzOptions& opt);

}  // namespace eecc
