#include "check/fuzzer.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <utility>

#include "core/cmp_system.h"
#include "core/runner.h"
#include "workload/profile.h"
#include "workload/workload.h"

namespace eecc {

CmpConfig fuzzChip() {
  // Small enough that a few hundred ops per tile already churn through
  // evictions and owner migrations; same shape the protocol tests use.
  CmpConfig cfg;
  cfg.meshWidth = 4;
  cfg.meshHeight = 4;
  cfg.numAreas = 4;
  cfg.l1 = CacheGeometry{64, 4, 1, 2};
  cfg.l2 = CacheGeometry{256, 8, 2, 3};
  cfg.l1cEntries = 64;
  cfg.l2cEntries = 64;
  cfg.dirCacheEntries = 64;
  cfg.numMemControllers = 4;
  return cfg;
}

FuzzOptions::FuzzOptions() : chip(fuzzChip()) {}

Trace makeFuzzTrace(const CmpConfig& chip, const std::string& workloadName,
                    std::uint64_t seed, std::uint64_t opsPerTile) {
  const auto perVm = profiles::byWorkloadName(workloadName);
  const auto numVms = static_cast<std::uint32_t>(perVm.size());
  const VmLayout layout = VmLayout::matched(chip, numVms);
  Workload workload(chip, layout, perVm, seed);
  return recordTrace(workload, chip, opsPerTile);
}

ProtocolRunReport runTraceChecked(const CmpConfig& chip, ProtocolKind kind,
                                  const Trace& trace, Tick sweepEvery,
                                  Tick progressBound) {
  CmpSystem system(chip, kind,
                   std::make_unique<TraceSource>(trace, /*bounded=*/true));
  MonitorSet monitors({progressBound, /*maxViolations=*/64});
  system.attachChecker(&monitors, sweepEvery);
  // The window only bounds issuing; a bounded source stops the run as soon
  // as every stream is replayed and the last transaction drained.
  system.run(Tick{1} << 40);

  ProtocolRunReport r;
  r.kind = kind;
  r.ops = system.opsCompleted();
  r.violationCount = monitors.log().total();
  r.violations = monitors.log().entries();
  r.image = monitors.image();
  if (r.ops != trace.records().size()) {
    // The run drained with operations still unissued or incomplete —
    // a deadlock or lost completion that the cycle bound may be too
    // generous to catch.
    r.violationCount += 1;
    r.violations.push_back(
        {"progress",
         "bounded replay completed " + std::to_string(r.ops) + " of " +
             std::to_string(trace.records().size()) + " operations (" +
             std::to_string(monitors.outstandingAccesses()) +
             " still outstanding at drain)",
         system.events().now(), 0, kInvalidNode});
  }
  return r;
}

namespace {

std::string hexBlock(Addr block) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(block));
  return buf;
}

bool violatesUnder(const CmpConfig& chip, ProtocolKind kind,
                   const std::vector<TraceRecord>& records,
                   std::uint32_t tileCount, Tick sweepEvery,
                   Tick progressBound) {
  Trace t;
  t.setTileCount(tileCount);
  for (const TraceRecord& r : records) t.append(r);
  return runTraceChecked(chip, kind, t, sweepEvery, progressBound)
             .violationCount != 0;
}

/// Appends per-block count mismatches between a reference image and
/// another protocol's, capped so a systematically broken protocol does
/// not produce thousands of report lines.
void compareImages(const ProtocolRunReport& ref, const ProtocolRunReport& run,
                   std::vector<std::string>& out) {
  constexpr std::size_t kMaxMessages = 8;
  std::uint64_t diffs = 0;
  auto note = [&](const std::string& msg) {
    if (diffs < kMaxMessages) out.push_back(msg);
    ++diffs;
  };
  const char* refName = protocolName(ref.kind);
  const char* runName = protocolName(run.kind);
  for (const auto& [block, img] : ref.image) {
    const auto it = run.image.find(block);
    const std::uint64_t writes = it == run.image.end() ? 0 : it->second.writes;
    const std::uint64_t reads = it == run.image.end() ? 0 : it->second.reads;
    if (writes != img.writes || reads != img.reads)
      note("block " + hexBlock(block) + ": " + refName + " saw " +
           std::to_string(img.writes) + "w/" + std::to_string(img.reads) +
           "r, " + runName + " saw " + std::to_string(writes) + "w/" +
           std::to_string(reads) + "r");
  }
  for (const auto& [block, img] : run.image) {
    if (ref.image.find(block) == ref.image.end())
      note("block " + hexBlock(block) + ": touched under " + runName +
           " (" + std::to_string(img.writes) + "w/" +
           std::to_string(img.reads) + "r) but never under " + refName);
  }
  if (diffs > kMaxMessages)
    out.push_back("... and " + std::to_string(diffs - kMaxMessages) +
                  " more blocks disagree between " + refName + " and " +
                  runName);
}

}  // namespace

Trace minimizeTrace(const CmpConfig& chip, ProtocolKind kind,
                    const Trace& trace, Tick sweepEvery, Tick progressBound) {
  std::vector<TraceRecord> records = trace.records();
  const std::uint32_t tiles = trace.tileCount();
  if (!violatesUnder(chip, kind, records, tiles, sweepEvery, progressBound))
    return trace;  // not reproducible in isolation: keep the full stream

  // ddmin: remove ever-finer chunks as long as the violation survives.
  std::size_t n = 2;
  while (records.size() >= 2 && n <= records.size()) {
    const std::size_t chunk = (records.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0; start < records.size(); start += chunk) {
      std::vector<TraceRecord> candidate;
      candidate.reserve(records.size() - chunk);
      candidate.insert(candidate.end(), records.begin(),
                       records.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(
          candidate.end(),
          records.begin() + static_cast<std::ptrdiff_t>(
                                std::min(start + chunk, records.size())),
          records.end());
      if (candidate.empty()) continue;
      if (violatesUnder(chip, kind, candidate, tiles, sweepEvery,
                        progressBound)) {
        records = std::move(candidate);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk <= 1) break;  // already at single-record granularity
      n = std::min(n * 2, records.size());
    }
  }

  Trace out;
  out.setTileCount(tiles);
  for (const TraceRecord& r : records) out.append(r);
  return out;
}

SeedReport fuzzOneSeed(const FuzzOptions& opt, std::uint64_t seed) {
  SeedReport rep;
  rep.seed = seed;
  const Trace trace =
      makeFuzzTrace(opt.chip, opt.workloadName, seed, opt.opsPerTile);
  rep.records = trace.records().size();

  for (ProtocolKind kind : opt.protocols)
    rep.runs.push_back(runTraceChecked(opt.chip, kind, trace, opt.sweepEvery,
                                       opt.progressBound));

  // Differential cross-check: every protocol replayed the same bounded
  // streams to completion, so completed-op totals and per-block golden
  // counts must agree with the first protocol's.
  if (!rep.runs.empty()) {
    const ProtocolRunReport& ref = rep.runs.front();
    for (std::size_t i = 1; i < rep.runs.size(); ++i) {
      const ProtocolRunReport& run = rep.runs[i];
      if (run.ops != ref.ops)
        rep.mismatches.push_back(
            std::string(protocolName(run.kind)) + " completed " +
            std::to_string(run.ops) + " ops, " + protocolName(ref.kind) +
            " completed " + std::to_string(ref.ops));
      compareImages(ref, run, rep.mismatches);
    }
  }

  if (!rep.ok()) {
    // Minimize against the first protocol with an in-run violation; pure
    // cross-protocol mismatches dump the full stream (minimizing against
    // a differential oracle would re-run every protocol per ddmin step).
    Trace dump = trace;
    for (const ProtocolRunReport& run : rep.runs) {
      if (run.violationCount == 0) continue;
      if (opt.minimize)
        dump = minimizeTrace(opt.chip, run.kind, trace, opt.sweepEvery,
                             opt.progressBound);
      break;
    }
    rep.counterexample = opt.outDir + "/counterexample-seed" +
                         std::to_string(seed) + ".eecctrc";
    dump.save(rep.counterexample);
  }
  return rep;
}

FuzzReport fuzz(const FuzzOptions& opt) {
  FuzzReport report;
  report.seeds.resize(opt.seeds);
  ExperimentRunner runner(opt.jobs);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(opt.seeds);
  for (std::uint64_t i = 0; i < opt.seeds; ++i)
    tasks.push_back([&opt, &report, i] {
      report.seeds[i] = fuzzOneSeed(opt, opt.baseSeed + i);
    });
  runner.runTasks(std::move(tasks));
  return report;
}

}  // namespace eecc
