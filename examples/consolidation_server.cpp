// Domain scenario 1 — picking a coherence protocol for a consolidated
// web-server box. Runs the paper's apache4x16p configuration under all
// four protocols and prints a decision table: performance, miss profile,
// dynamic power (cache / links / routing) and the static-power savings
// from the smaller coherence structures.
//
//   $ ./build/examples/consolidation_server
#include <cstdio>

#include "core/experiment.h"
#include "workload/profile.h"

using namespace eecc;

int main() {
  std::printf(
      "Consolidated server study: 4 Apache VMs x 16 cores on a 64-tile "
      "CMP, page deduplication on, VMs matched to the 4 static areas.\n\n");

  ExperimentConfig cfg;
  cfg.workloadName = "apache4x16p";
  cfg.warmupCycles = 400'000;
  cfg.windowCycles = 200'000;

  std::printf("%-15s %8s %9s %9s | %9s %9s %9s | %10s %9s\n", "protocol",
              "perf", "L1 miss", "missLat", "cacheMw", "linkMw", "routeMw",
              "dyn total", "leakage");
  // All four experiments run concurrently on the EECC_JOBS-wide pool;
  // results come back in protocol order, identical to a sequential loop.
  const std::vector<ExperimentResult> results = runAllProtocols(cfg);
  const double basePerf = results.front().throughput;  // Directory first
  for (const ExperimentResult& r : results) {
    const EnergyModel energy(r.protocol, chipParamsOf(cfg.chip));
    std::printf(
        "%-15s %8.3f %8.1f%% %8.1f | %9.1f %9.1f %9.1f | %10.1f %8.0fmW\n",
        protocolName(r.protocol), r.throughput / basePerf,
        100.0 * r.stats.l1MissRate(), r.stats.missLatency.mean(), r.cacheMw,
        r.linkMw, r.routingMw, r.totalDynamicMw(),
        energy.totalLeakagePerTileMw() *
            static_cast<double>(cfg.chip.tiles()));
  }

  std::printf(
      "\nReading the table: DiCo-Providers and DiCo-Arin cut the cache "
      "dynamic power (smaller sharing codes in the tag arrays) and the "
      "chip-wide leakage, resolve part of the misses at an in-area "
      "provider, and match the directory's performance — the paper's "
      "server-consolidation argument.\n");
  return 0;
}
