// Domain scenario 3 — what hypervisor page deduplication buys. Shows the
// Table IV memory savings emerging from the page manager for every
// workload mix, and the cache-pressure effect of switching dedup off
// (reduplicated pages competing for the shared L2), per the paper's
// Section I discussion of [6].
//
//   $ ./build/examples/dedup_study
#include <cstdio>

#include "core/runner.h"
#include "workload/profile.h"
#include "workload/workload.h"

using namespace eecc;

int main() {
  std::printf("Memory saved by deduplication (Table IV column):\n\n");
  std::printf("%-14s %12s %12s\n", "workload", "measured", "paper");
  const double paperSaved[] = {21.72, 23.88, 24.18, 32.71,
                               -1.0 /*blank*/, 36.82, 15.74, 15.21};
  CmpConfig chip;
  int i = 0;
  for (const auto& name : profiles::allWorkloadNames()) {
    const VmLayout layout = VmLayout::matched(chip, 4);
    const Workload w(chip, layout, profiles::byWorkloadName(name), 1);
    if (paperSaved[i] < 0)
      std::printf("%-14s %11.2f%% %12s\n", name.c_str(),
                  100.0 * w.pages().savedFraction(), "(blank)");
    else
      std::printf("%-14s %11.2f%% %11.2f%%\n", name.c_str(),
                  100.0 * w.pages().savedFraction(), paperSaved[i]);
    ++i;
  }

  std::printf(
      "\nCache-pressure effect of deduplication (apache, DiCo-Arin):\n\n");
  ExperimentConfig cfg;
  cfg.workloadName = "apache4x16p";
  cfg.protocol = ProtocolKind::DiCoArin;
  cfg.warmupCycles = 400'000;
  cfg.windowCycles = 200'000;
  // Both configurations run concurrently on the experiment pool.
  ExperimentConfig offCfg = cfg;
  offCfg.dedupEnabled = false;
  ExperimentRunner runner;
  const std::vector<ExperimentResult> results =
      runner.runMany({cfg, offCfg});
  const ExperimentResult& on = results[0];
  const ExperimentResult& off = results[1];
  std::printf("  dedup ON : perf=%.3f  L2 miss=%.1f%%\n", on.throughput,
              100.0 * on.stats.l2MissRate());
  std::printf("  dedup OFF: perf=%.3f  L2 miss=%.1f%%\n", off.throughput,
              100.0 * off.stats.l2MissRate());
  std::printf(
      "\nA single shared copy in the L2 serves all four VMs; turning "
      "dedup off reduplicates those pages and raises L2 pressure — the "
      "effect [6] quantifies at ~6.6%% performance for a flat "
      "directory.\n");
  return 0;
}
