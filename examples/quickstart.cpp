// Quickstart: build a 64-tile CMP with the DiCo-Providers protocol, run a
// consolidated 4-VM Apache workload for a short window, and print the
// headline statistics. Start here to see the public API end to end.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/cmp_system.h"
#include "workload/profile.h"

using namespace eecc;

int main() {
  // 1. Chip configuration — the paper's Table III by default: 8x8 tiles,
  //    128 KB L1s, 1 MB L2 banks, four 16-tile areas, 8 border memory
  //    controllers.
  CmpConfig chip;
  chip.validate();

  // 2. Consolidation setup: four 16-core Apache VMs, each scheduled onto
  //    one area (the "matched" placement of Figure 6, left), with
  //    hypervisor page deduplication between them.
  const VmLayout layout = VmLayout::matched(chip, /*numVms=*/4);
  const auto perVm = profiles::uniform4(profiles::apache());

  // 3. Assemble the system around one of the four coherence protocols.
  CmpSystem system(chip, ProtocolKind::DiCoProviders, layout, perVm);

  // 4. Warm the caches, then measure a fixed window of cycles.
  std::printf("warming caches...\n");
  system.warmup(300'000);
  std::printf("measuring...\n");
  system.run(150'000);

  // 5. Harvest results.
  const ProtocolStats& stats = system.protocol().stats();
  const NocStats& noc = system.network().stats();
  std::printf("\n=== %s on 4x apache VMs ===\n",
              protocolName(system.protocol().kind()));
  std::printf("memory operations completed : %llu (%.2f per cycle)\n",
              static_cast<unsigned long long>(system.opsCompleted()),
              system.throughput());
  std::printf("L1 miss rate                : %.2f%%\n",
              100.0 * stats.l1MissRate());
  std::printf("average miss latency        : %.1f cycles\n",
              stats.missLatency.mean());
  std::printf("misses resolved by an in-area provider: %.1f%%\n",
              stats.l1Misses()
                  ? 100.0 * static_cast<double>(
                                stats.providerResolvedMisses) /
                        static_cast<double>(stats.l1Misses())
                  : 0.0);
  std::printf("NoC messages                : %llu (%llu broadcasts)\n",
              static_cast<unsigned long long>(noc.messages),
              static_cast<unsigned long long>(noc.broadcasts));
  std::printf("memory saved by page dedup  : %.1f%%\n",
              100.0 * system.workload().pages().savedFraction());

  // The invariant checker is available at any quiesced point.
  system.protocol().checkInvariants();
  std::printf("\ncoherence invariants: OK\n");
  return 0;
}
