// Domain scenario 2 — VM placement and area isolation. Compares the
// matched placement (each VM on one hard-wired area, Figure 6 left) with
// the deliberately misaligned "-alt" placement (VMs straddle areas,
// Figure 6 right) for DiCo-Arin, whose broadcast fallback is the part
// most sensitive to data becoming shared between areas.
//
//   $ ./build/examples/vm_isolation
#include <cstdio>

#include "core/runner.h"

using namespace eecc;

namespace {

void show(const char* label, const ExperimentResult& r) {
  std::printf("%-22s perf=%.3f ops/cyc  missLat=%.1f  broadcasts=%llu  "
              "netMw=%.1f  totalMw=%.1f\n",
              label, r.throughput, r.stats.missLatency.mean(),
              static_cast<unsigned long long>(r.noc.broadcasts),
              r.linkMw + r.routingMw, r.totalDynamicMw());
}

}  // namespace

int main() {
  std::printf(
      "VM placement study (DiCo-Arin, 4 Apache VMs): does sloppy "
      "scheduling across the hard-wired areas hurt?\n\n");

  ExperimentConfig cfg;
  cfg.workloadName = "apache4x16p";
  cfg.protocol = ProtocolKind::DiCoArin;
  cfg.warmupCycles = 400'000;
  cfg.windowCycles = 200'000;

  // Both placements run concurrently on the experiment pool.
  ExperimentConfig altCfg = cfg;
  altCfg.altLayout = true;
  ExperimentRunner runner;
  const std::vector<ExperimentResult> results =
      runner.runMany({cfg, altCfg});
  const ExperimentResult& matched = results[0];
  const ExperimentResult& alt = results[1];
  show("matched placement", matched);
  show("alternative placement", alt);

  std::printf(
      "\nperformance delta: %+.1f%%   broadcast traffic: %llu -> %llu\n",
      100.0 * (alt.throughput / matched.throughput - 1.0),
      static_cast<unsigned long long>(matched.noc.broadcasts),
      static_cast<unsigned long long>(alt.noc.broadcasts));
  std::printf(
      "\nThe paper's Section V-D observation: misaligned VMs do not "
      "degrade performance (owners stay inside the VM, and providers now "
      "also shorten misses to VM-private data), but ordinary read/write "
      "data shared between areas makes DiCo-Arin broadcast more.\n");
  return 0;
}
